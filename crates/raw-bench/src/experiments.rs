//! Experiment runners, one per table/figure (DESIGN.md index E1–E12).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use raw_baselines::{
    internet_mix, saturation_throughput, BackplaneSim, ClickRouter, CrossbarSim, FabricConfig,
    Granularity, Queueing,
};
use raw_lookup::{ForwardingTable, RouteEntry};
use raw_workloads::{generate, Pattern, Workload};
use raw_xbar::{config, RawRouter, RouterConfig};

/// The packet sizes of Figure 7-1.
pub const PAPER_SIZES: [usize; 5] = [64, 128, 256, 512, 1024];

/// The paper's reported numbers, for side-by-side printing.
pub const PAPER_PEAK_GBPS: [f64; 5] = [7.3, 14.4, 20.1, 24.7, 26.9];
pub const PAPER_AVG_GBPS: [f64; 5] = [5.0, 9.9, 13.8, 16.9, 18.6];
pub const PAPER_CLICK_GBPS: f64 = 0.23;

/// The experiment forwarding table: `10.<p>.0.0/16 -> port p` plus a
/// default route.
pub fn experiment_table() -> Arc<ForwardingTable> {
    let mut routes: Vec<RouteEntry> = (0..4)
        .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
        .collect();
    routes.push(RouteEntry::new(0, 0, 0));
    Arc::new(ForwardingTable::build(&routes))
}

/// One measured point of a Figure 7-1 curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SizePoint {
    pub bytes: usize,
    pub gbps: f64,
    pub mpps: f64,
    pub paper_gbps: f64,
}

fn run_router_throughput(w: &Workload, warm: u64, window: u64) -> (f64, f64) {
    let quantum = (w.packet_bytes / 4).min(256);
    let cfg = RouterConfig {
        quantum_words: quantum,
        cut_through: w.packet_bytes / 4 <= 256,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, experiment_table());
    for sp in generate(w) {
        r.offer(sp.port, sp.release, &sp.packet);
    }
    r.run(warm + window);
    assert_eq!(r.parse_errors(), 0, "corrupt delivery during measurement");
    (
        r.throughput_gbps(warm, warm + window),
        r.pps(warm, warm + window) / 1e6,
    )
}

/// How many packets per port saturate a measurement window.
pub(crate) fn packets_for(bytes: usize, cycles: u64) -> usize {
    ((cycles as usize) / (bytes / 4)).clamp(64, 8000)
}

const WARM: u64 = 20_000;
const WINDOW: u64 = 200_000;

/// Run `f` over every item on its own thread, preserving item order in
/// the results. Each simulator instance is deterministic and
/// self-contained, so a fanned-out sweep returns exactly what the
/// sequential loop would — only the wall-clock changes.
fn parallel_points<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let out = parking_lot::Mutex::new((0..items.len()).map(|_| None).collect::<Vec<Option<R>>>());
    crossbeam::scope(|scope| {
        for (i, item) in items.iter().enumerate() {
            let out = &out;
            let f = &f;
            scope.spawn(move |_| {
                let r = f(item);
                out.lock()[i] = Some(r);
            });
        }
    })
    .expect("sweep threads");
    out.into_inner().into_iter().map(Option::unwrap).collect()
}

/// Run one simulation per packet size on its own thread.
fn parallel_sweep(mk: impl Fn(usize) -> Workload + Sync) -> Vec<SizePoint> {
    parallel_points(&PAPER_SIZES, |&bytes| {
        let w = mk(bytes);
        let (gbps, mpps) = run_router_throughput(&w, WARM, WINDOW);
        SizePoint {
            bytes,
            gbps,
            mpps,
            paper_gbps: 0.0, // filled in by the caller
        }
    })
}

/// E1 / Figure 7-1 (top): peak throughput under conflict-free
/// permutation traffic at saturation.
pub fn peak_sweep() -> Vec<SizePoint> {
    let mut pts = parallel_sweep(|bytes| Workload::peak(bytes, packets_for(bytes, WARM + WINDOW)));
    for (p, paper) in pts.iter_mut().zip(PAPER_PEAK_GBPS) {
        p.paper_gbps = paper;
    }
    pts
}

/// E2 / Figure 7-1 (bottom): average throughput under uniform-random
/// destinations ("complete fairness of the traffic").
pub fn avg_sweep() -> Vec<SizePoint> {
    let mut pts =
        parallel_sweep(|bytes| Workload::average(bytes, packets_for(bytes, WARM + WINDOW), 42));
    for (p, paper) in pts.iter_mut().zip(PAPER_AVG_GBPS) {
        p.paper_gbps = paper;
    }
    pts
}

/// The Click baseline bar of Figure 7-1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClickPoint {
    pub bytes: usize,
    pub gbps: f64,
    pub kpps: f64,
}

pub fn click_baseline() -> Vec<ClickPoint> {
    let c = ClickRouter::standard();
    PAPER_SIZES
        .iter()
        .map(|&bytes| ClickPoint {
            bytes,
            gbps: c.saturation_gbps(bytes),
            kpps: c.max_lossfree_pps(bytes) / 1e3,
        })
        .collect()
}

/// E3 / Figure 7-3: per-tile utilization over an 800-cycle window at
/// saturation. Returns `(ascii_plot, csv)`.
pub fn fig7_3(bytes: usize) -> (String, String) {
    let quantum = bytes / 4;
    let cfg = RouterConfig {
        quantum_words: quantum,
        cut_through: true,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, experiment_table());
    let w = Workload::peak(bytes, 4000.min(600_000 / quantum));
    for sp in generate(&w) {
        r.offer(sp.port, sp.release, &sp.packet);
    }
    // Warm into steady state, then record 800 cycles as the paper does.
    r.start_trace(20_000, 800);
    r.run(20_000 + 800 + 16);
    let at = r.take_trace().expect("trace recorded").to_activity_trace();
    (at.render_ascii(8), at.to_csv())
}

/// E4 / §6.1–6.2 + Table 6.1: configuration-space minimization.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConfigSpaceStats {
    pub global_space: usize,
    pub switch_code_configs: usize,
    pub with_grant_flag: usize,
    pub clients_only: usize,
    pub reduction_factor: f64,
    pub paper_minimized: usize,
    pub paper_reduction: f64,
    /// Generated switch-program size at the evaluation quantum, and the
    /// IMEM bound it must fit.
    pub program_instrs_q64: usize,
    pub unminimized_instrs_q64: usize,
    pub switch_imem: usize,
}

pub fn table6_1() -> ConfigSpaceStats {
    use raw_xbar::codegen::{gen_crossbar_switch, switch_code_key, unminimized_instr_count};
    use raw_xbar::layout::RouterLayout;
    let cs = config::ConfigSpace::enumerate(config::SchedPolicy::ShortestFirst);
    let switch_code: std::collections::BTreeSet<_> =
        cs.configs.iter().map(switch_code_key).collect();
    let clients: std::collections::BTreeSet<_> =
        cs.configs.iter().map(|c| (c.out, c.cw, c.ccw)).collect();
    let l = RouterLayout::canonical();
    let prog = gen_crossbar_switch(&l.ports[0], &cs, 64);
    ConfigSpaceStats {
        global_space: config::GLOBAL_SPACE,
        switch_code_configs: switch_code.len(),
        with_grant_flag: cs.configs.len(),
        clients_only: clients.len(),
        reduction_factor: config::GLOBAL_SPACE as f64 / switch_code.len() as f64,
        paper_minimized: 32,
        paper_reduction: 78.0,
        program_instrs_q64: prog.program.len(),
        unminimized_instrs_q64: unminimized_instr_count(64),
        switch_imem: raw_sim::SWITCH_IMEM_INSTRS,
    }
}

/// E5 / Figure 3-2: the 5-cycle tile-to-tile send, measured in assembly
/// on the simulator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig32 {
    pub total_cycles: u64,
    pub send_to_use: u64,
    pub paper_total: u64,
    pub paper_send_to_use: u64,
}

pub fn fig3_2() -> Fig32 {
    use raw_isa::{assemble_switch, IsaCore, Reg};
    use raw_sim::{RawConfig, RawMachine, TileId, NET0};
    let mut m = RawMachine::new(RawConfig::default());
    let mut sender = IsaCore::from_asm("or $csto, $zero, $a1\nhalt").unwrap();
    sender.set_reg(Reg(5), 0xBEEF);
    let (sender, sw) = sender.watched();
    m.set_program(TileId(0), Box::new(sender));
    m.set_switch_program(
        TileId(0),
        NET0,
        assemble_switch("route $csto->$cSo").unwrap(),
    );
    let mut recv = IsaCore::from_asm("and $a1, $a1, $csti\nhalt").unwrap();
    recv.set_reg(Reg(5), 0xFFFF_FFFF);
    let (recv, rw) = recv.watched();
    m.set_program(TileId(4), Box::new(recv));
    m.set_switch_program(
        TileId(4),
        NET0,
        assemble_switch("route $cNi->$csti").unwrap(),
    );
    m.run(30);
    let or_cycle = sw.lock().unwrap().retire_cycles[0];
    let and_cycle = rw.lock().unwrap().retire_cycles[0];
    Fig32 {
        total_cycles: and_cycle - or_cycle + 1,
        send_to_use: and_cycle - or_cycle - 1,
        paper_total: 5,
        paper_send_to_use: 3,
    }
}

/// E7 / §2.2.2: HOL blocking and iSLIP on the conventional fabric.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HolRow {
    pub load: f64,
    pub fifo_delivered: f64,
    pub voq_delivered: f64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ch2Claims {
    pub rows: Vec<HolRow>,
    pub fifo_saturation: f64,
    pub voq_saturation: f64,
    pub paper_fifo: f64,
    pub paper_voq: f64,
    pub cells_throughput: f64,
    pub packets_throughput: f64,
    pub paper_cells: f64,
    pub paper_packets: f64,
}

pub fn ch2_claims() -> Ch2Claims {
    let ports = 16;
    let slots = 30_000;
    let rows = [0.2, 0.4, 0.5, 0.55, 0.6, 0.7, 0.8, 0.9, 1.0]
        .iter()
        .map(|&load| {
            let mut fifo = CrossbarSim::new(FabricConfig {
                ports,
                queueing: Queueing::Fifo,
                islip_iters: 1,
                seed: 7,
                ..FabricConfig::default()
            });
            fifo.run_uniform(load, slots);
            let mut voq = CrossbarSim::new(FabricConfig {
                ports,
                queueing: Queueing::Voq,
                islip_iters: 4,
                seed: 7,
                ..FabricConfig::default()
            });
            voq.run_uniform(load, slots);
            HolRow {
                load,
                fifo_delivered: fifo.report.throughput(ports),
                voq_delivered: voq.report.throughput(ports),
            }
        })
        .collect();
    Ch2Claims {
        rows,
        fifo_saturation: saturation_throughput(Queueing::Fifo, ports, 1, slots, 3),
        voq_saturation: saturation_throughput(Queueing::Voq, ports, 4, slots, 3),
        paper_fifo: 0.586,
        paper_voq: 1.0,
        cells_throughput: BackplaneSim::new(8, Granularity::Cells, internet_mix(), 2).run(slots),
        packets_throughput: BackplaneSim::new(8, Granularity::Packets, internet_mix(), 2)
            .run(slots),
        paper_cells: 1.0,
        paper_packets: 0.6,
    }
}

/// E8 / §5.4 + §8.7: fairness under an all-to-one hotspot, with and
/// without weighted tokens.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FairnessResult {
    pub weights: [u32; 4],
    /// Packets delivered per source under saturation hotspot traffic.
    pub per_source: [u64; 4],
    pub jain_index: f64,
}

pub fn fairness(weights: [u32; 4]) -> FairnessResult {
    let bytes = 256usize;
    let cfg = RouterConfig {
        quantum_words: bytes / 4,
        cut_through: true,
        weights,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, experiment_table());
    let w = Workload {
        pattern: Pattern::Hotspot { dst: 0 },
        ..Workload::peak(bytes, 2000)
    };
    for sp in generate(&w) {
        r.offer(sp.port, sp.release, &sp.packet);
    }
    r.run(300_000);
    let delivered = r.delivered(0);
    let mut per_source = [0u64; 4];
    for (_, p) in &delivered {
        let src = (p.header.src & 0x3) as usize;
        per_source[src] += 1;
    }
    let n = 4.0;
    let sum: f64 = per_source.iter().map(|&x| x as f64).sum();
    let sumsq: f64 = per_source.iter().map(|&x| (x as f64) * (x as f64)).sum();
    let jain = if sumsq == 0.0 {
        1.0
    } else {
        sum * sum / (n * sumsq)
    };
    FairnessResult {
        weights,
        per_source,
        jain_index: jain,
    }
}

/// E9 / §5.3: sufficiency of a single static network — measured ring-link
/// and output-link word rates at peak.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RingUtilization {
    /// Words per cycle delivered per output port (the binding resource).
    pub out_words_per_cycle: f64,
    /// Upper bound on words per cycle on the busiest ring link
    /// (permutation traffic: each link carries one flow).
    pub ring_words_per_cycle: f64,
    /// Ring capacity in the same units (1.0 per network).
    pub ring_capacity: f64,
}

pub fn ring_utilization() -> RingUtilization {
    let bytes = 1024usize;
    let w = Workload::peak(bytes, 2000);
    let (gbps, _) = run_router_throughput(&w, WARM, WINDOW);
    // Each delivered bit crossed exactly one out link; permutation flows
    // traverse ring links at the same word rate as their output. The
    // aggregate rate spreads across the four ports.
    let words_per_cycle_port = gbps * 1e9 / 32.0 / 250e6 / 4.0;
    RingUtilization {
        out_words_per_cycle: words_per_cycle_port,
        ring_words_per_cycle: words_per_cycle_port,
        ring_capacity: 1.0,
    }
}

/// E10 / §5.5: randomized deadlock sweep — every random workload must
/// drain completely.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeadlockSweep {
    pub trials: u32,
    pub drained: u32,
    pub packets_total: u64,
}

pub fn deadlock_sweep(trials: u32) -> DeadlockSweep {
    let ts: Vec<u32> = (0..trials).collect();
    let per_trial = parallel_points(&ts, |&t| {
        let bytes = [64usize, 128, 256, 512][t as usize % 4];
        let pattern = match t % 3 {
            0 => Pattern::Uniform,
            1 => Pattern::Hotspot { dst: (t % 4) as u8 },
            _ => Pattern::Bursty { burst: 4 },
        };
        let w = Workload {
            pattern,
            seed: 1000 + t as u64,
            ..Workload::average(bytes, 60, 1000 + t as u64)
        };
        let cfg = RouterConfig {
            quantum_words: bytes / 4,
            cut_through: true,
            ..RouterConfig::default()
        };
        let mut r = RawRouter::new(cfg, experiment_table());
        let sched = generate(&w);
        for sp in &sched {
            r.offer(sp.port, sp.release, &sp.packet);
        }
        let ok = r.run_until_drained(3_000_000) && r.parse_errors() == 0;
        (ok, sched.len() as u64)
    });
    DeadlockSweep {
        trials,
        drained: per_trial.iter().filter(|(ok, _)| *ok).count() as u32,
        packets_total: per_trial.iter().map(|(_, n)| n).sum(),
    }
}

/// E11 / §8.6: multicast — fabric fanout versus input-side replication,
/// measured end to end on the router's data path.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MulticastResult {
    /// Cycles to deliver N multicast packets to all of ports 1..3 using
    /// the fabric's switch fanout (one stream per packet).
    pub cycles_with_fanout: u64,
    /// Cycles when the source must send three unicast copies per packet.
    pub cycles_with_replication: u64,
    /// Fanout copies delivered (3 x N in both runs).
    pub copies: u64,
    /// The multicast configuration space and its minimized size.
    pub mcast_global_space: usize,
    pub mcast_minimized: usize,
}

pub fn multicast_demo() -> MulticastResult {
    use raw_lookup::encode_multicast;
    let n = 24u32;
    let bytes = 256usize;
    let run = |fanout: bool| -> (u64, u64) {
        let mut routes: Vec<RouteEntry> = (0..4)
            .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
            .collect();
        routes.push(RouteEntry::new(0xe000_0000, 4, encode_multicast(0b1110)));
        let cfg = RouterConfig {
            quantum_words: bytes / 4,
            cut_through: true,
            multicast: true,
            ..RouterConfig::default()
        };
        let mut r = RawRouter::new(cfg, Arc::new(ForwardingTable::build(&routes)));
        for k in 0..n {
            if fanout {
                r.offer(
                    0,
                    0,
                    &raw_net::Packet::synthetic(0x0a0a_0000, 0xe000_0005, bytes, 64, k),
                );
            } else {
                for dst in 1..4u32 {
                    let p = raw_net::Packet::synthetic(
                        0x0a0a_0000,
                        0x0a00_0001 | (dst << 16),
                        bytes,
                        64,
                        k * 4 + dst,
                    );
                    r.offer(0, 0, &p);
                }
            }
        }
        let expect = 3 * n as u64;
        while r.delivered_count() < expect && r.machine.cycle() < 6_000_000 {
            r.run(128);
        }
        assert!(
            r.delivered_count() >= expect,
            "multicast run incomplete: {} of {expect}",
            r.delivered_count()
        );
        (r.machine.cycle(), r.delivered_count())
    };
    let (cyc_fan, copies) = run(true);
    let (cyc_rep, _) = run(false);
    let cs = config::ConfigSpace::enumerate_multicast(config::SchedPolicy::default());
    MulticastResult {
        cycles_with_fanout: cyc_fan,
        cycles_with_replication: cyc_rep,
        copies,
        mcast_global_space: config::GLOBAL_SPACE_MCAST,
        mcast_minimized: cs.minimized_len(),
    }
}

/// E12 / §8.5: ring versus mesh scaling.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingRow {
    pub ports: usize,
    pub ring_throughput: f64,
    pub mesh_throughput: f64,
}

pub fn scaling_study() -> Vec<ScalingRow> {
    // One measurement path for every consumer: the same ScalingCurve
    // the fabric experiment uses for its ring-vs-Clos comparison.
    let curve = raw_xbar::ScalingCurve::measure(&[4, 8, 16, 32], 30_000, 5);
    curve
        .points
        .iter()
        .map(|p| ScalingRow {
            ports: p.ports,
            ring_throughput: p.ring_throughput,
            mesh_throughput: p.mesh_throughput,
        })
        .collect()
}

/// §6.5: the Crossbar Processors as generated Raw assembly on the
/// cycle-accurate interpreter, versus the native state machines.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsmXbarResult {
    /// 512-byte peak (quantum 128 — the destination-mask routine set no
    /// longer fits switch IMEM at quantum 256, a real instance of the
    /// §6.2 capacity argument).
    pub native_gbps_512: f64,
    pub asm_gbps_512: f64,
    pub asm_program_instrs: usize,
}

pub fn asm_crossbar_study() -> AsmXbarResult {
    let run = |asm: bool| -> f64 {
        let w = Workload::peak(512, 2500);
        let cfg = RouterConfig {
            quantum_words: 128,
            cut_through: true,
            asm_crossbar: asm,
            ..RouterConfig::default()
        };
        let mut r = RawRouter::new(cfg, experiment_table());
        for sp in generate(&w) {
            r.offer(sp.port, sp.release, &sp.packet);
        }
        r.run(WARM + WINDOW);
        assert_eq!(r.parse_errors(), 0);
        r.throughput_gbps(WARM, WARM + WINDOW)
    };
    let src = raw_xbar::asm_xbar::gen_crossbar_asm_source(0, 1);
    let instrs = raw_isa::assemble(&src).expect("assembles").len();
    AsmXbarResult {
        native_gbps_512: run(false),
        asm_gbps_512: run(true),
        asm_program_instrs: instrs,
    }
}

/// E17 / §4.4 vs Chapter 2: ingress queueing — the router's FIFO design
/// against the virtual-output-queueing extension, under the classic HOL
/// scenario (a hotspot burst with a victim packet to an idle output
/// queued behind it on every port).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VoqResult {
    /// Completion cycle of the last HOL-victim packet, per discipline.
    pub fifo_victim_cycle: u64,
    pub voq_victim_cycle: u64,
    /// Completion of the entire workload, per discipline.
    pub fifo_total_cycle: u64,
    pub voq_total_cycle: u64,
}

pub fn voq_study() -> VoqResult {
    use raw_xbar::IngressQueueing;
    let run = |queueing: IngressQueueing| -> (u64, u64) {
        let cfg = RouterConfig {
            quantum_words: 16,
            cut_through: true,
            queueing,
            ..RouterConfig::default()
        };
        let mut r = RawRouter::new(cfg, experiment_table());
        for src in 0..4u32 {
            for k in 0..20u32 {
                let p = raw_net::Packet::synthetic(
                    0x0a0a_0000 + src,
                    0x0a00_0001, // hotspot: everyone floods port 0
                    64,
                    64,
                    k,
                );
                r.offer(src as usize, 0, &p);
            }
            let v = raw_net::Packet::synthetic(
                0x0a0a_0000 + src,
                0x0a00_0001 | (((src + 1) % 4) << 16),
                64,
                64,
                99,
            );
            r.offer(src as usize, 0, &v);
        }
        assert!(r.run_until_drained(6_000_000));
        let victims = (0..4)
            .flat_map(|p| r.delivered(p))
            .filter(|(_, p)| ((p.header.dst >> 16) & 0x3) != 0)
            .map(|(c, _)| c)
            .max()
            .expect("victims delivered");
        let total = (0..4)
            .flat_map(|p| r.delivered(p))
            .map(|(c, _)| c)
            .max()
            .unwrap();
        (victims, total)
    };
    let (fv, ft) = run(IngressQueueing::Fifo);
    let (vv, vt) = run(IngressQueueing::Voq);
    VoqResult {
        fifo_victim_cycle: fv,
        voq_victim_cycle: vv,
        fifo_total_cycle: ft,
        voq_total_cycle: vt,
    }
}

/// E16: packet latency versus offered load (the §2.2.1 discussion —
/// input-queued switches trade predictable latency for throughput).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyRow {
    pub load_pct: u32,
    pub mean_cycles: f64,
    pub p95_cycles: u64,
    pub delivered: u64,
}

pub fn latency_sweep() -> Vec<LatencyRow> {
    let bytes = 256usize;
    let quantum = bytes / 4;
    // A packet takes ~(quantum + overhead) cycles of port time; scale the
    // Bernoulli slot so `p` maps to the offered fraction of capacity.
    let service = (quantum + 50) as u64;
    parallel_points(&[10u32, 30, 50, 70, 90], |&load_pct| {
        let cfg = RouterConfig {
            quantum_words: quantum,
            cut_through: true,
            ..RouterConfig::default()
        };
        let mut r = RawRouter::new(cfg, experiment_table());
        let w = Workload {
            arrivals: raw_workloads::Arrivals::Bernoulli {
                slot_cycles: service,
                p_mille: load_pct * 10,
            },
            ..Workload::average(bytes, 400, 9)
        };
        let sched = generate(&w);
        // Release time per (src, id) for latency accounting.
        let mut release = std::collections::BTreeMap::new();
        for sp in &sched {
            release.insert((sp.port, sp.packet.header.id), sp.release);
            r.offer(sp.port, sp.release, &sp.packet);
        }
        r.run_until_drained(40_000_000);
        let mut lats: Vec<u64> = Vec::new();
        for port in 0..4 {
            for (cycle, p) in r.delivered(port) {
                let src = (p.header.src & 0x3) as usize;
                if let Some(rel) = release.get(&(src, p.header.id)) {
                    lats.push(cycle.saturating_sub(*rel));
                }
            }
        }
        lats.sort_unstable();
        let delivered = lats.len() as u64;
        let mean = lats.iter().sum::<u64>() as f64 / delivered.max(1) as f64;
        let p95 = lats.get(lats.len() * 95 / 100).copied().unwrap_or(0);
        LatencyRow {
            load_pct,
            mean_cycles: mean,
            p95_cycles: p95,
            delivered,
        }
    })
}

/// Quantum ablation: throughput of 1,024-byte packets as the quantum
/// shrinks and store-and-forward reassembly takes over (the §4.2
/// fragmentation path).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuantumRow {
    pub quantum_words: usize,
    pub cut_through: bool,
    pub gbps: f64,
}

pub fn quantum_ablation() -> Vec<QuantumRow> {
    let bytes = 1024usize;
    [256usize, 128, 64, 32]
        .iter()
        .map(|&q| {
            let cut = q >= bytes / 4;
            let cfg = RouterConfig {
                quantum_words: q,
                cut_through: cut,
                ..RouterConfig::default()
            };
            let mut r = RawRouter::new(cfg, experiment_table());
            let w = Workload::peak(bytes, 1500);
            for sp in generate(&w) {
                r.offer(sp.port, sp.release, &sp.packet);
            }
            r.run(WARM + WINDOW);
            QuantumRow {
                quantum_words: q,
                cut_through: cut,
                gbps: r.throughput_gbps(WARM, WARM + WINDOW),
            }
        })
        .collect()
}

/// Lookup-engine ablation: Patricia trie versus the DIR-24-8 table on
/// the same traffic (§8.2's direction).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LookupRow {
    pub engine: String,
    pub gbps_64b: f64,
    pub mean_lookup_cycles: f64,
}

pub fn lookup_ablation() -> Vec<LookupRow> {
    [raw_lookup::Engine::Patricia, raw_lookup::Engine::Dir24_8]
        .iter()
        .map(|&engine| {
            let cfg = RouterConfig {
                quantum_words: 16,
                cut_through: true,
                engine,
                ..RouterConfig::default()
            };
            let mut r = RawRouter::new(cfg, experiment_table());
            let w = Workload::peak(64, 6000);
            for sp in generate(&w) {
                r.offer(sp.port, sp.release, &sp.packet);
            }
            r.run(WARM + WINDOW);
            let lk = r.lk_stats[0].lock().unwrap();
            LookupRow {
                engine: format!("{engine:?}"),
                gbps_64b: r.throughput_gbps(WARM, WARM + WINDOW),
                mean_lookup_cycles: lk.total_cost_cycles as f64 / lk.lookups.max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_2_reproduces_exactly() {
        let f = fig3_2();
        assert_eq!(f.total_cycles, f.paper_total);
        assert_eq!(f.send_to_use, f.paper_send_to_use);
    }

    #[test]
    fn table6_1_reproduces_the_minimization() {
        let t = table6_1();
        assert_eq!(t.global_space, 2500);
        assert!(t.switch_code_configs <= 40);
        assert!(t.reduction_factor > 60.0);
        assert!(t.program_instrs_q64 <= t.switch_imem);
        assert!(t.unminimized_instrs_q64 > t.switch_imem);
    }

    #[test]
    fn multicast_fanout_saves_cycles() {
        let m = multicast_demo();
        assert!(
            m.cycles_with_fanout * 2 < m.cycles_with_replication,
            "fanout {} vs replication {}",
            m.cycles_with_fanout,
            m.cycles_with_replication
        );
        assert_eq!(m.copies, 72);
    }

    #[test]
    fn scaling_shows_ring_decay_and_mesh_flat() {
        let rows = scaling_study();
        assert!(rows[0].ring_throughput > rows.last().unwrap().ring_throughput);
        assert!(rows.iter().all(|r| (r.mesh_throughput - 1.0).abs() < 1e-9));
    }
}
