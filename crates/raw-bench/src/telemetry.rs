//! E18: the instrumented Figure 7-1 runs — per-stage latency breakdowns,
//! per-output percentiles, per-tile stall attribution, and a Chrome
//! `trace_event` export, all from the `raw-telemetry` recorder threaded
//! through the whole router.

use serde::Serialize;

use raw_telemetry::{chrome_trace, shared, with_sink, Recorder, SharedSink, TelemetrySummary};
use raw_workloads::{generate, Workload};
use raw_xbar::{RawRouter, RouterConfig};

use crate::experiments::{experiment_table, packets_for};

/// One instrumented run: the workload identity, the usual throughput
/// metrics, and the full telemetry summary.
#[derive(Clone, Debug, Serialize)]
pub struct TelemetryRun {
    pub name: String,
    pub bytes: usize,
    pub cycles: u64,
    pub delivered: u64,
    pub gbps: f64,
    pub summary: TelemetrySummary,
}

/// The payload of `results/telemetry.json`.
#[derive(Clone, Debug, Serialize)]
pub struct TelemetryReport {
    pub runs: Vec<TelemetryRun>,
}

/// Packets from the Chrome trace export, bounded so the trace file stays
/// loadable in the viewer.
const TRACE_PACKETS: usize = 256;

/// Run one fig7-1-style workload with the recorder attached. Returns the
/// run summary and the Chrome trace of the first [`TRACE_PACKETS`]
/// packet lifecycles.
///
/// Panics if the stall-conservation invariant fails — that would be a
/// telemetry bug, not a noisy measurement.
pub fn telemetry_run(name: &str, w: &Workload, cycles: u64) -> (TelemetryRun, String) {
    let quantum = (w.packet_bytes / 4).min(256);
    let cfg = RouterConfig {
        quantum_words: quantum,
        cut_through: w.packet_bytes / 4 <= 256,
        ..RouterConfig::default()
    };
    let sink: SharedSink = shared(Recorder::new(16, raw_sim::NUM_STATIC_NETS));
    let mut r = RawRouter::new_with_telemetry(cfg, experiment_table(), sink.clone());
    for sp in generate(w) {
        r.offer(sp.port, sp.release, &sp.packet);
    }
    r.run(cycles);
    assert_eq!(r.parse_errors(), 0, "corrupt delivery during telemetry run");
    // Throughput over the post-warmup window, as in the fig7-1 sweeps
    // (scaled down when a smoke run shrinks the span).
    let warm = (cycles / 10).min(20_000);
    let gbps = r.throughput_gbps(warm, cycles);
    let total_cycles = r.machine.cycle();
    let delivered = r.delivered_count();
    with_sink::<Recorder, _>(&sink, |rec| {
        let violations = rec.conservation_violations(total_cycles);
        assert!(
            violations.is_empty(),
            "{name}: stall conservation violated on tiles {violations:?} \
             (expected busy + idle + stalls == {total_cycles})"
        );
        let run = TelemetryRun {
            name: name.to_string(),
            bytes: w.packet_bytes,
            cycles: total_cycles,
            delivered,
            gbps,
            summary: rec.summary(raw_xbar::NPORTS),
        };
        let trace = chrome_trace(rec.lives(), TRACE_PACKETS);
        (run, trace)
    })
}

/// The `repro -- telemetry` payload: fig7-1 peak and average workloads at
/// the small- and large-packet corners, instrumented. Returns the report
/// and the Chrome trace of the peak 64-byte run.
pub fn telemetry_report(cycles: u64) -> (TelemetryReport, String) {
    let mut runs = Vec::new();
    let mut trace = String::new();
    for &bytes in &[64usize, 1024] {
        let n = packets_for(bytes, cycles);
        let (run, tr) = telemetry_run(
            &format!("fig7-1-peak-{bytes}B"),
            &Workload::peak(bytes, n),
            cycles,
        );
        runs.push(run);
        if bytes == 64 {
            trace = tr;
        }
        let (run, _) = telemetry_run(
            &format!("fig7-1-avg-{bytes}B"),
            &Workload::average(bytes, n, 42),
            cycles,
        );
        runs.push(run);
    }
    (TelemetryReport { runs }, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_run_produces_complete_breakdowns() {
        let (run, trace) = telemetry_run("test-peak-64B", &Workload::peak(64, 200), 30_000);
        assert!(run.delivered > 0, "packets must flow");
        assert_eq!(run.summary.unmatched_egress, 0);
        let completed = run.summary.packets_completed;
        assert!(completed > 0, "lifecycles must close");
        // Lifecycles close at last-word egress, delivery counts at the
        // device; at a fixed-cycle cut they differ only by in-flight tails.
        assert!(
            completed.abs_diff(run.delivered) <= raw_xbar::NPORTS as u64,
            "completed {completed} vs delivered {}",
            run.delivered
        );
        for s in &run.summary.stages {
            assert_eq!(
                s.count, completed,
                "stage {} must cover every completed packet",
                s.stage
            );
            assert!(s.p50 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
        }
        // The Chrome trace is valid JSON with a traceEvents array.
        let v: serde::Value = serde_json::from_str(&trace).expect("valid trace JSON");
        let serde::Value::Object(o) = v else {
            panic!("trace root must be an object")
        };
        assert!(o.iter().any(|(k, _)| k == "traceEvents"));
    }

    #[test]
    fn telemetry_run_is_reproducible() {
        let fingerprint = || -> String {
            let (run, trace) = telemetry_run("repro", &Workload::peak(256, 100), 20_000);
            format!(
                "{} {} {:.9} {}",
                run.delivered,
                run.cycles,
                run.gbps,
                trace.len()
            )
        };
        assert_eq!(fingerprint(), fingerprint());
    }
}
