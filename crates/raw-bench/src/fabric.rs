//! The §8.5 composition experiment: aggregate switching bandwidth of
//! multi-router Clos fabrics versus a single 4-port router and versus
//! the ring the paper rejects.
//!
//! Sweeps router count (1 / 6 / 12 via [`Topology`]), epoch size, and
//! spray mode on saturated fabric-uniform traffic. Every cell runs
//! twice — threaded executor and single-threaded reference — and the
//! two fingerprints must agree bit-for-bit; the report then sets the
//! ring-vs-Clos scaling story side by side using the
//! [`raw_xbar::ScalingCurve`] ring model.

use serde::{Deserialize, Serialize};

use raw_fabric::{FabricConfig, FabricSummary, RawFabric, SprayMode, Topology};
use raw_workloads::{generate_n, Arrivals, Pattern, Workload};
use raw_xbar::ScalingCurve;

/// One sweep cell: a (topology, spray, epoch) point, run on both
/// executors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FabricCell {
    pub topology: String,
    pub spray: String,
    pub epoch_cycles: u64,
    pub routers: usize,
    pub ext_ports: usize,
    pub offered: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub epochs: u64,
    pub cycles: u64,
    /// Aggregate delivered rate over the whole drained run.
    pub mpps: f64,
    pub gbps: f64,
    pub backpressure_epochs: u64,
    pub fingerprint: String,
    /// Threaded and single-threaded reference fingerprints agree.
    pub fingerprints_match: bool,
}

/// Ring versus Clos at the same external port count. `ring_norm` and
/// `fabric_norm` are per-port throughputs normalized to each model's
/// 4-port baseline; `fabric_speedup` is the raw aggregate-Mpps ratio
/// over the single router.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RingVsClosRow {
    pub ports: usize,
    pub ring_norm: f64,
    pub fabric_norm: f64,
    pub fabric_mpps: f64,
    pub fabric_speedup: f64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FabricReport {
    pub packet_bytes: usize,
    pub packets_per_port: usize,
    pub cells: Vec<FabricCell>,
    /// Best aggregate Mpps of the single router across its cells.
    pub single4_mpps: f64,
    /// Best aggregate Mpps of the 16-port Clos across its cells.
    pub clos16_mpps: f64,
    /// The headline: 16-port Clos over single 4-port router.
    pub clos_over_single: f64,
    pub all_fingerprints_match: bool,
    pub ring_curve: ScalingCurve,
    pub ring_vs_clos: Vec<RingVsClosRow>,
    /// Full telemetry summary (per-link stats, per-stage latency) of
    /// the best Clos16 cell.
    pub best_clos: FabricSummary,
}

const EPOCH_SWEEP: [u64; 3] = [128, 512, 2048];
const PACKET_BYTES: usize = 64;

fn run_once(cfg: FabricConfig, w: &Workload, threaded: bool) -> RawFabric {
    let nports = cfg.topology.ext_ports();
    let mut fab = RawFabric::try_new(cfg).expect("valid fabric config");
    for s in generate_n(w, nports) {
        fab.offer(s.port, s.release, &s.packet);
    }
    assert!(
        fab.run_until_drained(500_000, threaded),
        "fabric wedged: {:?} delivered {}/{}",
        fab.summary().topology,
        fab.delivered_count(),
        fab.offered()
    );
    let errs = fab.conservation_errors();
    assert!(errs.is_empty(), "conservation violated: {errs:?}");
    fab
}

fn run_cell(
    topology: Topology,
    spray: SprayMode,
    epoch_cycles: u64,
    packets_per_port: usize,
) -> (FabricCell, FabricSummary) {
    let cfg = FabricConfig {
        topology,
        epoch_cycles,
        spray,
        ..FabricConfig::default()
    };
    let w = Workload {
        pattern: Pattern::FabricUniform,
        arrivals: Arrivals::Saturation,
        packet_bytes: PACKET_BYTES,
        packets_per_port,
        seed: 42,
        ttl: 64,
    };
    let reference = run_once(cfg.clone(), &w, false);
    let threaded = run_once(cfg, &w, true);
    let summary = threaded.summary();
    let cycles = threaded.cycle();
    let cell = FabricCell {
        topology: topology.name().into(),
        spray: spray.name().into(),
        epoch_cycles,
        routers: topology.routers(),
        ext_ports: topology.ext_ports(),
        offered: threaded.offered(),
        delivered: threaded.delivered_count(),
        dropped: threaded.dropped_count(),
        epochs: threaded.epochs_run(),
        cycles,
        mpps: threaded.mpps(0, cycles),
        gbps: threaded.gbps(0, cycles),
        backpressure_epochs: summary.backpressure_epochs,
        fingerprint: format!("{:016x}", threaded.fingerprint()),
        fingerprints_match: reference.fingerprint() == threaded.fingerprint(),
    };
    (cell, summary)
}

/// The full sweep. `packets_per_port` sets the run length; the
/// boundary-pipeline fill (a few epochs) is amortized only when the
/// injection phase dwarfs it, so the aggregate-bandwidth headline wants
/// hundreds of packets per port (the `--smoke` mode trades that
/// fidelity for speed).
pub fn fabric_study(packets_per_port: usize) -> FabricReport {
    let mut cells = Vec::new();
    let mut best: Option<(f64, FabricSummary)> = None;
    for topology in [Topology::Single4, Topology::Folded8, Topology::Clos16] {
        for spray in [SprayMode::Hash, SprayMode::LeastOccupancy] {
            for epoch_cycles in EPOCH_SWEEP {
                let (cell, summary) = run_cell(topology, spray, epoch_cycles, packets_per_port);
                if topology == Topology::Clos16 && best.as_ref().is_none_or(|(m, _)| cell.mpps > *m)
                {
                    best = Some((cell.mpps, summary));
                }
                cells.push(cell);
            }
        }
    }
    let best_of = |name: &str| {
        cells
            .iter()
            .filter(|c| c.topology == name)
            .map(|c| c.mpps)
            .fold(0.0f64, f64::max)
    };
    let (single4_mpps, folded8_mpps, clos16_mpps) =
        (best_of("single4"), best_of("folded8"), best_of("clos16"));
    let ring_curve = ScalingCurve::measure(&[4, 8, 16], 30_000, 5);
    let ring4 = ring_curve.ring_at(4).expect("4-port ring point");
    let per_port4 = single4_mpps / 4.0;
    let ring_vs_clos = [(4usize, single4_mpps), (8, folded8_mpps), (16, clos16_mpps)]
        .iter()
        .map(|&(ports, mpps)| RingVsClosRow {
            ports,
            ring_norm: ring_curve.ring_at(ports).expect("ring point") / ring4,
            fabric_norm: (mpps / ports as f64) / per_port4,
            fabric_mpps: mpps,
            fabric_speedup: mpps / single4_mpps,
        })
        .collect();
    let (_, best_clos) = best.expect("Clos16 cells exist");
    FabricReport {
        packet_bytes: PACKET_BYTES,
        packets_per_port,
        all_fingerprints_match: cells.iter().all(|c| c.fingerprints_match),
        single4_mpps,
        clos16_mpps,
        clos_over_single: clos16_mpps / single4_mpps,
        cells,
        ring_curve,
        ring_vs_clos,
        best_clos,
    }
}

/// The topologies the repo ships (and the fabric experiments sweep).
pub const SHIPPED_TOPOLOGIES: [Topology; 3] =
    [Topology::Single4, Topology::Folded8, Topology::Clos16];

/// Run the whole-fabric static analyses (`RV5xx` deadlock, `RV6xx`
/// routing, `RV7xx` credit sizing) over every shipped topology under
/// the default fabric configuration — the verdicts `repro -- verify`
/// folds into `results/verify.json`. Every verdict must be empty: these
/// are exactly the fabrics `RawFabric::try_new` will build.
pub fn fabric_verify_verdicts() -> Vec<raw_verify::fabric::FabricVerdict> {
    SHIPPED_TOPOLOGIES
        .into_iter()
        .map(|t| {
            raw_fabric::verify_fabric(&FabricConfig {
                topology: t,
                ..FabricConfig::default()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_topologies_verify_with_zero_diagnostics() {
        for v in fabric_verify_verdicts() {
            assert!(v.diags.is_empty(), "{}: {:?}", v.name, v.diags);
        }
    }

    /// A miniature sweep cell end-to-end: both executors agree and the
    /// books close (the full sweep is exercised by `repro -- fabric`).
    #[test]
    fn clos_cell_runs_and_fingerprints_agree() {
        let (cell, summary) = run_cell(Topology::Clos16, SprayMode::Hash, 256, 8);
        assert!(cell.fingerprints_match);
        assert_eq!(cell.offered, 128);
        assert_eq!(cell.delivered + cell.dropped, cell.offered);
        assert_eq!(summary.links.len(), 32);
    }
}
