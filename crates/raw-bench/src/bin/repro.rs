//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p raw-bench --bin repro -- all
//! cargo run --release -p raw-bench --bin repro -- fig7-1-peak
//! ```
//!
//! Each subcommand prints the paper-formatted table (with the paper's
//! reported values beside ours) and writes `results/<exp>.json`.

use std::path::PathBuf;

use raw_bench::*;

fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

fn run_fig7_1_peak() {
    println!("== Figure 7-1 (top): peak throughput vs packet size ==");
    let pts = peak_sweep();
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.bytes.to_string(),
                fmt2(p.gbps),
                fmt2(p.mpps),
                fmt2(p.paper_gbps),
                format!("{:.2}x", p.paper_gbps / p.gbps),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["bytes", "Gbps", "Mpps", "paper Gbps", "paper/ours"],
            &rows
        )
    );
    let click = click_baseline();
    println!(
        "Click baseline (64 B): {:.2} Gbps (paper bar: {:.2} Gbps); Raw/Click at 1024 B: {:.0}x",
        click[0].gbps,
        PAPER_CLICK_GBPS,
        pts.last().unwrap().gbps / click[0].gbps
    );
    write_json(&results_dir(), "fig7_1_peak", &pts).unwrap();
    write_json(&results_dir(), "click_baseline", &click).unwrap();
}

fn run_fig7_1_avg() {
    println!("== Figure 7-1 (bottom): average throughput (uniform traffic) ==");
    let pts = avg_sweep();
    let peak = peak_sweep();
    let rows: Vec<Vec<String>> = pts
        .iter()
        .zip(&peak)
        .map(|(p, pk)| {
            vec![
                p.bytes.to_string(),
                fmt2(p.gbps),
                fmt2(p.paper_gbps),
                format!("{:.0}%", 100.0 * p.gbps / pk.gbps),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["bytes", "Gbps", "paper Gbps", "avg/peak"], &rows)
    );
    println!("(the paper reports average ≈ 69% of peak)");
    write_json(&results_dir(), "fig7_1_avg", &pts).unwrap();
}

fn run_fig7_2() {
    println!("== Figure 7-2: mapping of router elements to Raw tiles ==");
    use raw_xbar::RouterLayout;
    let l = RouterLayout::canonical();
    let mut roles = vec![String::new(); 16];
    for (i, p) in l.ports.iter().enumerate() {
        roles[p.ingress.index()] = format!("Ig{i}");
        roles[p.lookup.index()] = format!("Lk{i}");
        roles[p.crossbar.index()] = format!("Xb{i}");
        roles[p.egress.index()] = format!("Eg{i}");
    }
    println!("        Out0    Out1");
    for r in 0..4 {
        let row: Vec<String> = (0..4)
            .map(|c| format!("{:>4}({:>2})", roles[r * 4 + c], r * 4 + c))
            .collect();
        let side = match r {
            1 => "In0 >  ",
            2 => "In3 >  ",
            _ => "       ",
        };
        let end = match r {
            1 => "  < In1",
            2 => "  < In2",
            _ => "",
        };
        println!("{side}{}{end}", row.join(" "));
    }
    println!("        Out3    Out2");
    println!("(Xb tiles 5-6-10-9 form the rotating ring, clockwise 0->1->2->3)");
}

fn run_fig7_3() {
    println!("== Figure 7-3: per-tile utilization, 800 cycles ==");
    for bytes in [64usize, 1024] {
        let (ascii, csv) = fig7_3(bytes);
        println!(
            "--- {bytes}-byte packets ('#' busy, '.' blocked, ' ' idle; bucket = 8 cycles) ---"
        );
        println!("{ascii}");
        std::fs::create_dir_all(results_dir()).unwrap();
        std::fs::write(results_dir().join(format!("fig7_3_{bytes}.csv")), csv).unwrap();
    }
    println!("CSV traces written to results/fig7_3_*.csv");
}

fn run_table6_1() {
    println!("== §6.1-6.2 / Table 6.1: configuration-space minimization ==");
    let t = table6_1();
    println!("global configuration space (5^4 x 4):  {}", t.global_space);
    println!(
        "distinct switch-code configurations:   {} (paper: {})",
        t.switch_code_configs, t.paper_minimized
    );
    println!(
        "  + ingress-blocked boolean:           {}",
        t.with_grant_flag
    );
    println!("  clients only (Table 6.1 alphabet):   {}", t.clients_only);
    println!(
        "reduction factor:                      {:.1}x (paper: ~{:.0}x)",
        t.reduction_factor, t.paper_reduction
    );
    println!(
        "switch program @ quantum 64:           {} instrs (IMEM: {}) -> fits",
        t.program_instrs_q64, t.switch_imem
    );
    println!(
        "unminimized program @ quantum 64:      {} instrs -> {:.0}x over IMEM",
        t.unminimized_instrs_q64,
        t.unminimized_instrs_q64 as f64 / t.switch_imem as f64
    );
    write_json(&results_dir(), "table6_1", &t).unwrap();
}

fn run_fig3_2() {
    println!("== Figure 3-2: tile-to-tile send timing ==");
    let f = fig3_2();
    println!(
        "total cycles: {} (paper: {}), send-to-use: {} (paper: {})",
        f.total_cycles, f.paper_total, f.send_to_use, f.paper_send_to_use
    );
    write_json(&results_dir(), "fig3_2", &f).unwrap();
}

fn run_ch2() {
    println!("== §2.2.2 claims: HOL blocking, VOQ+iSLIP, cells vs packets ==");
    let c = ch2_claims();
    let rows: Vec<Vec<String>> = c
        .rows
        .iter()
        .map(|r| {
            vec![
                fmt2(r.load),
                format!("{:.3}", r.fifo_delivered),
                format!("{:.3}", r.voq_delivered),
            ]
        })
        .collect();
    println!("{}", table(&["load", "FIFO", "VOQ+iSLIP"], &rows));
    println!(
        "saturation: FIFO {:.3} (paper ~{:.3}), VOQ {:.3} (paper ~{:.1})",
        c.fifo_saturation, c.paper_fifo, c.voq_saturation, c.paper_voq
    );
    println!(
        "cells vs variable packets: {:.3} vs {:.3} (paper: ~1.0 vs ~0.6)",
        c.cells_throughput, c.packets_throughput
    );
    write_json(&results_dir(), "ch2_claims", &c).unwrap();
}

fn run_fairness() {
    println!("== §5.4 fairness + §8.7 weighted-token QoS (all->port0 hotspot) ==");
    for weights in [[1u32, 1, 1, 1], [4, 1, 1, 1]] {
        let f = fairness(weights);
        println!(
            "weights {:?}: per-source deliveries {:?}, Jain index {:.3}",
            f.weights, f.per_source, f.jain_index
        );
        write_json(&results_dir(), &format!("fairness_w{}", weights[0]), &f).unwrap();
    }
}

fn run_net2() {
    println!("== §5.3: sufficiency of a single static network ==");
    let u = ring_utilization();
    println!(
        "output-link words/cycle: {:.3}; busiest ring link words/cycle: {:.3}; ring capacity: {:.1}",
        u.out_words_per_cycle, u.ring_words_per_cycle, u.ring_capacity
    );
    println!(
        "ring headroom at peak: {:.0}% -> a second static network adds idle capacity only",
        100.0 * (u.ring_capacity - u.ring_words_per_cycle)
    );
    write_json(&results_dir(), "ring_utilization", &u).unwrap();
}

fn run_deadlock() {
    println!("== §5.5: randomized deadlock sweep ==");
    let d = deadlock_sweep(12);
    println!(
        "{}/{} random workloads drained completely ({} packets total, zero corruption)",
        d.drained, d.trials, d.packets_total
    );
    assert_eq!(d.drained, d.trials, "deadlock or loss detected!");
    write_json(&results_dir(), "deadlock_sweep", &d).unwrap();
}

fn run_multicast() {
    println!("== §8.6: multicast fanout in the fabric (end to end) ==");
    let m = multicast_demo();
    println!(
        "{} fanout-3 copies delivered: {} cycles with fabric multicast vs {} with \
         input replication ({:.2}x speedup)",
        m.copies,
        m.cycles_with_fanout,
        m.cycles_with_replication,
        m.cycles_with_replication as f64 / m.cycles_with_fanout as f64
    );
    println!(
        "multicast configuration space: {} global points minimized to {} local configurations",
        m.mcast_global_space, m.mcast_minimized
    );
    write_json(&results_dir(), "multicast", &m).unwrap();
}

fn run_scaling() {
    println!("== §8.5: scalability (ring vs mesh-of-4-port-routers) ==");
    let rows = scaling_study();
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.ports.to_string(),
                format!("{:.3}", r.ring_throughput),
                format!("{:.3}", r.mesh_throughput),
            ]
        })
        .collect();
    println!("{}", table(&["ports", "ring tput", "mesh tput"], &t));
    write_json(&results_dir(), "scaling", &rows).unwrap();
}

fn run_quantum() {
    println!("== ablation: quantum size & the fragmentation path (1024 B packets) ==");
    let rows = quantum_ablation();
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.quantum_words.to_string(),
                if r.cut_through {
                    "cut-through"
                } else {
                    "store-fwd"
                }
                .into(),
                fmt2(r.gbps),
            ]
        })
        .collect();
    println!("{}", table(&["quantum", "egress", "Gbps"], &t));
    write_json(&results_dir(), "quantum_ablation", &rows).unwrap();
}

fn run_asm() {
    println!("== §6.5: Crossbar Processors in generated Raw assembly ==");
    let a = asm_crossbar_study();
    println!(
        "512 B peak (quantum 128): native state machines {:.2} Gbps, \
         interpreted assembly {:.2} Gbps",
        a.native_gbps_512, a.asm_gbps_512
    );
    println!(
        "({}-instruction tile program: header exchange, ring all-to-all, jump-table \
         index, lw, grant, swpcr)",
        a.asm_program_instrs
    );
    write_json(&results_dir(), "asm_crossbar", &a).unwrap();
}

fn run_voq() {
    println!("== §4.4 ingress queueing: FIFO (the paper's design) vs VOQ extension ==");
    let v = voq_study();
    println!(
        "HOL victim completion:  FIFO {} cycles, VOQ {} cycles ({:.2}x earlier)",
        v.fifo_victim_cycle,
        v.voq_victim_cycle,
        v.fifo_victim_cycle as f64 / v.voq_victim_cycle as f64
    );
    println!(
        "whole-workload drain:   FIFO {} cycles, VOQ {} cycles",
        v.fifo_total_cycle, v.voq_total_cycle
    );
    println!(
        "(VOQ un-blocks the victims at the cost of store-and-forward buffering — \
         the Chapter-2 trade, measured on the Raw fabric)"
    );
    write_json(&results_dir(), "voq_study", &v).unwrap();
}

fn run_latency() {
    println!("== latency vs offered load (256 B packets, uniform destinations) ==");
    let rows = latency_sweep();
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.load_pct),
                format!("{:.0}", r.mean_cycles),
                r.p95_cycles.to_string(),
                r.delivered.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["load", "mean cyc", "p95 cyc", "delivered"], &t)
    );
    println!("(queueing delay grows with load — the MGR §2.2.1 trade-off)");
    write_json(&results_dir(), "latency", &rows).unwrap();
}

fn run_lookup() {
    println!("== ablation: lookup engine (§8.2 direction) ==");
    let rows = lookup_ablation();
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                fmt2(r.gbps_64b),
                fmt2(r.mean_lookup_cycles),
            ]
        })
        .collect();
    println!("{}", table(&["engine", "64B Gbps", "lookup cyc"], &t));
    write_json(&results_dir(), "lookup_ablation", &rows).unwrap();
}

fn run_simspeed() {
    // `repro -- simspeed [cycles] [repeats]`: a smaller span makes a
    // smoke test (CI); the defaults match the Figure 7-1 measurement
    // run with median-of-3 timing.
    let cycles = match std::env::args().nth(2) {
        None => 220_000,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("simspeed: '{s}' is not a cycle count")),
    };
    let repeats = match std::env::args().nth(3) {
        None => 3,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("simspeed: '{s}' is not a repeat count")),
    };
    println!(
        "== simulator performance: wall-clock per engine ({cycles} router cycles, \
         median of {repeats}) =="
    );
    let rep = simspeed_with(cycles, repeats);
    let rows: Vec<Vec<String>> = rep
        .rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.engine.clone(),
                r.sim_cycles.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.2}", r.mcycles_per_sec),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["scenario", "engine", "sim cycles", "wall ms", "Mcyc/s"],
            &rows
        )
    );
    let srows: Vec<Vec<String>> = rep
        .speedups
        .iter()
        .map(|s| {
            vec![
                s.scenario.clone(),
                format!("{:.2}x", s.event_skip_vs_per_cycle),
                format!("{:.2}x", s.compiled_vs_per_cycle),
                format!("{:.2}x", s.compiled_vs_event_skip),
                if s.fingerprints_match {
                    "identical"
                } else {
                    "DIVERGED"
                }
                .into(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "scenario",
                "skip/percyc",
                "compiled/percyc",
                "compiled/skip",
                "results"
            ],
            &srows
        )
    );
    for s in &rep.speedups {
        assert!(
            s.fingerprints_match,
            "{}: engine modes must not change simulation results",
            s.scenario
        );
    }
    write_json(&results_dir(), "simspeed", &rep).unwrap();
    // CI-diffable digest at the repo root: the speedup matrix and
    // per-engine throughput, without raw wall times.
    write_json(&PathBuf::from("."), "BENCH_simspeed", &bench_digest(&rep)).unwrap();
}

fn run_telemetry() {
    // `repro -- telemetry [cycles]`: a smaller span makes a smoke test
    // (CI); the default matches the Figure 7-1 measurement span.
    let cycles = match std::env::args().nth(2) {
        None => 220_000,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("telemetry: '{s}' is not a cycle count")),
    };
    println!("== telemetry: per-stage latency breakdown & stall attribution ({cycles} cycles) ==");
    let (rep, trace) = telemetry_report(cycles);
    for run in &rep.runs {
        println!(
            "--- {} ({} packets completed, {:.2} Gbps) ---",
            run.name, run.summary.packets_completed, run.gbps
        );
        let rows: Vec<Vec<String>> = run
            .summary
            .stages
            .iter()
            .map(|s| {
                vec![
                    s.stage.clone(),
                    format!("{:.1}", s.mean_cycles),
                    s.p50.to_string(),
                    s.p90.to_string(),
                    s.p99.to_string(),
                    s.p999.to_string(),
                    s.max.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            table(
                &["stage", "mean", "p50", "p90", "p99", "p999", "max"],
                &rows
            )
        );
        let stalled: Vec<Vec<String>> = run
            .summary
            .tiles
            .iter()
            .filter(|t| t.top_stall != "none")
            .map(|t| {
                vec![
                    t.tile.to_string(),
                    format!("{:.0}%", 100.0 * t.busy as f64 / t.total.max(1) as f64),
                    t.fifo_full.to_string(),
                    t.fifo_empty.to_string(),
                    t.token_wait.to_string(),
                    t.top_stall.clone(),
                ]
            })
            .collect();
        if !stalled.is_empty() {
            println!(
                "{}",
                table(
                    &[
                        "tile",
                        "busy",
                        "fifo-full",
                        "fifo-empty",
                        "token-wait",
                        "top stall"
                    ],
                    &stalled
                )
            );
        }
    }
    write_json(&results_dir(), "telemetry", &rep).unwrap();
    std::fs::write(results_dir().join("telemetry_trace.json"), trace).unwrap();
    println!(
        "wrote results/telemetry.json; results/telemetry_trace.json loads in chrome://tracing"
    );
}

fn run_chaos() {
    // `repro -- chaos [cycles]`: a smaller span makes a smoke test (CI);
    // the default matches the Figure 7-1 measurement span.
    let cycles = match std::env::args().nth(2) {
        None => 220_000,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("chaos: '{s}' is not a cycle count")),
    };
    println!("== chaos: reference fault plan, graceful degradation soak ({cycles} cycles) ==");
    let rep = chaos_report(cycles);
    println!(
        "plan: seed {:#06x}, header corruption {}ppm, lookup misses {}ppm (+{} cycles), \
         {} tile stall windows of {} cycles",
        rep.plan.seed,
        rep.plan.header_flip_ppm,
        rep.plan.lookup_miss_ppm,
        rep.plan.lookup_penalty_cycles,
        rep.plan.tile_stalls.len(),
        rep.plan.tile_stalls.first().map_or(0, |s| s.len),
    );
    let rows: Vec<Vec<String>> = rep
        .runs
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.offered.to_string(),
                r.delivered.to_string(),
                r.dropped.to_string(),
                r.lookup_misses.to_string(),
                r.latency_p50.to_string(),
                r.latency_p99.to_string(),
                r.fingerprint.clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "scenario",
                "offered",
                "delivered",
                "dropped",
                "lk-miss",
                "lat p50",
                "lat p99",
                "fingerprint"
            ],
            &rows
        )
    );
    for r in &rep.runs {
        let buckets: Vec<String> = r
            .drops
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(k, n)| format!("{k}={n}"))
            .collect();
        println!("{:>18} drops: {}", r.name, buckets.join(" "));
        assert_eq!(r.delivered + r.dropped, r.offered, "accounting must close");
        assert_eq!(r.flow_order_violations, 0, "flows must stay ordered");
    }
    println!(
        "zero-rate plan vs unwrapped router: {}",
        if rep.zero_plan_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    assert!(rep.zero_plan_identical);
    write_json(&results_dir(), "chaos", &rep).unwrap();
    println!("wrote results/chaos.json (two runs per scenario, fingerprints verified equal)");
}

fn run_fabric() {
    // `repro -- fabric [--smoke | <packets/port>]`: the smoke run
    // shrinks the per-cell run length for CI; the default is long
    // enough to amortize the epoch-boundary pipeline fill that the
    // aggregate-bandwidth headline depends on.
    let (ppp, smoke) = match std::env::args().nth(2).as_deref() {
        None => (1_000usize, false),
        Some("--smoke") => (120, true),
        Some(s) => (
            s.parse()
                .unwrap_or_else(|_| panic!("fabric: '{s}' is not a packet count")),
            false,
        ),
    };
    println!(
        "== fabric: Clos composition of 4-port routers, threaded vs reference \
         ({ppp} packets/port) =="
    );
    let rep = fabric_study(ppp);
    let rows: Vec<Vec<String>> = rep
        .cells
        .iter()
        .map(|c| {
            vec![
                c.topology.clone(),
                c.spray.clone(),
                c.epoch_cycles.to_string(),
                c.routers.to_string(),
                c.offered.to_string(),
                c.dropped.to_string(),
                format!("{:.3}", c.mpps),
                format!("{:.2}", c.gbps),
                c.backpressure_epochs.to_string(),
                if c.fingerprints_match {
                    "ok"
                } else {
                    "DIVERGED"
                }
                .into(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "topology",
                "spray",
                "epoch",
                "routers",
                "offered",
                "dropped",
                "Mpps",
                "Gb/s",
                "bp-epochs",
                "fp",
            ],
            &rows
        )
    );
    let t: Vec<Vec<String>> = rep
        .ring_vs_clos
        .iter()
        .map(|r| {
            vec![
                r.ports.to_string(),
                format!("{:.3}", r.ring_norm),
                format!("{:.3}", r.fabric_norm),
                format!("{:.3}", r.fabric_mpps),
                format!("{:.2}x", r.fabric_speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "ports",
                "ring/port (norm)",
                "clos/port (norm)",
                "clos Mpps",
                "speedup",
            ],
            &t
        )
    );
    println!(
        "16-port Clos aggregate: {:.3} Mpps = {:.2}x the single 4-port router",
        rep.clos16_mpps, rep.clos_over_single
    );
    assert!(
        rep.all_fingerprints_match,
        "threaded executor diverged from the single-threaded reference"
    );
    if smoke {
        assert!(
            rep.clos_over_single >= 1.5,
            "smoke: Clos16 only {:.2}x a single router",
            rep.clos_over_single
        );
    } else {
        assert!(
            rep.clos_over_single >= 3.0,
            "Clos16 only {:.2}x a single router (acceptance floor is 3x)",
            rep.clos_over_single
        );
    }
    write_json(&results_dir(), "fabric", &rep).unwrap();
    println!("wrote results/fabric.json (every cell fingerprint-verified on both executors)");
}

fn run_sched() {
    // `repro -- sched [--smoke]`: the E19 scheduler head-to-head. The
    // smoke run halves the per-cell span for CI; both lengths keep the
    // measured window (the second half of the run) in steady state.
    let (cycles, ppp) = match std::env::args().nth(2).as_deref() {
        None => (240_000u64, 10_000usize),
        Some("--smoke") => (120_000, 4_000),
        Some(s) => panic!("sched: unknown argument '{s}' (expected --smoke)"),
    };
    println!(
        "== sched: rotating token vs iSLIP vs crosspoint-queued, {} patterns x {} arbiters \
         ({cycles} cycles/cell) ==",
        sched_patterns().len(),
        raw_xbar::SchedKind::all().len()
    );
    let rep = sched_report(cycles, ppp);
    let rows: Vec<Vec<String>> = rep
        .cells
        .iter()
        .map(|c| {
            vec![
                c.pattern.clone(),
                c.scheduler.clone(),
                format!("{:.3}", c.gbps),
                c.delivered.to_string(),
                c.p50.to_string(),
                c.p99.to_string(),
                c.p999.to_string(),
                format!("{:.3}", c.input_fairness),
                (c.arb_wait_cycles + c.token_wait_cycles).to_string(),
                c.sched_matched.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "pattern",
                "arbiter",
                "gbps",
                "delivered",
                "p50",
                "p99",
                "p999",
                "jain",
                "arb-wait",
                "matched"
            ],
            &rows
        )
    );
    let srows: Vec<Vec<String>> = rep
        .speedups
        .iter()
        .map(|s| {
            vec![
                s.pattern.clone(),
                format!("{:.2}x", s.islip_over_token),
                format!("{:.2}x", s.cq_over_token),
            ]
        })
        .collect();
    println!("{}", table(&["pattern", "islip/token", "cq/token"], &srows));
    write_json(&results_dir(), "sched", &rep).unwrap();
    let adv = rep
        .speedups
        .iter()
        .find(|s| s.pattern == "adversary")
        .expect("adversary row");
    for (nm, x) in [("islip", adv.islip_over_token), ("cq", adv.cq_over_token)] {
        assert!(
            x >= 2.0,
            "{nm} at {x:.2}x the token on the adversary — below the 2.0x floor"
        );
    }
    println!(
        "adversary floor met: islip {:.2}x, cq {:.2}x over the FIFO token (>= 2.0x)",
        adv.islip_over_token, adv.cq_over_token
    );
}

fn run_verify() {
    println!(
        "== static verification: conflict / lockstep / deadlock / jump-table / fabric / sched =="
    );
    let mut report = raw_verify::verify_all(&raw_verify::VerifyOptions::default());

    // Whole-fabric analyses (RV5xx–RV7xx) over every shipped topology,
    // merged into the same report so results/verify.json carries one
    // unified verdict.
    let verdicts = raw_bench::fabric_verify_verdicts();
    for v in &verdicts {
        report.programs_checked.push(format!("fabric-{}", v.name));
        report.coverage.fabric_topologies += 1;
        report.coverage.fabric_cdg_nodes += v.cdg_nodes;
        report.coverage.fabric_cdg_edges += v.cdg_edges;
        report.coverage.fabric_route_walks += v.route_walks;
        report.coverage.fabric_coverage_points += v.coverage_points;
        report.coverage.fabric_links += v.links_checked;
        report.diagnostics.extend(v.diags.iter().cloned());
    }
    report
        .analyses
        .extend(raw_verify::fabric::fabric_reports(&verdicts));

    // Scheduler analyses (RV8xx): drive the executable arbiters over the
    // exhaustive request space and persistent-demand traces.
    let sched_verdicts =
        raw_verify::sched::sched_verdicts(&raw_verify::sched::SchedVerifyOptions::default());
    for v in &sched_verdicts {
        report.programs_checked.push(format!("sched-{}", v.name));
        report.coverage.sched_matchings += v.matchings_checked;
        report.coverage.sched_trace_slots += v.trace_slots;
        report.diagnostics.extend(v.diags.iter().cloned());
    }
    report
        .analyses
        .extend(raw_verify::sched::sched_reports(&sched_verdicts));
    report.pass = report.diagnostics.is_empty();

    let rows: Vec<Vec<String>> = report
        .analyses
        .iter()
        .map(|a| {
            vec![
                a.name.to_string(),
                a.code_prefix.to_string(),
                if a.pass { "pass" } else { "FAIL" }.into(),
                a.checked.to_string(),
                a.detail.clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["analysis", "codes", "verdict", "checked", "detail"],
            &rows
        )
    );
    let cov = &report.coverage;
    println!(
        "coverage: {}/{} unicast and {}/{} multicast global indices, {} body routines, \
         {} lockstep scenarios (max FIFO high-water {} of 4), {} policies",
        cov.unicast_points,
        cov.unicast_space,
        cov.multicast_points,
        cov.multicast_space,
        cov.body_routines,
        cov.lockstep_scenarios,
        cov.max_fifo_high_water,
        cov.policies
    );
    println!(
        "fabric coverage: {} topologies, {} CDG nodes / {} edges, {} routing walks, \
         {} address-coverage points, {} links credit-checked",
        cov.fabric_topologies,
        cov.fabric_cdg_nodes,
        cov.fabric_cdg_edges,
        cov.fabric_route_walks,
        cov.fabric_coverage_points,
        cov.fabric_links
    );
    println!(
        "sched coverage: {} matchings validity/routability-checked, {} persistent-demand slots",
        cov.sched_matchings, cov.sched_trace_slots
    );
    for d in &report.diagnostics {
        println!("  {d}");
    }
    write_json(&results_dir(), "verify", &report).unwrap();
    assert!(
        report.pass,
        "static verification failed with {} diagnostic(s)",
        report.diagnostics.len()
    );
    println!("all generated switch schedules verify");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let all = cmd == "all";
    let mut matched = false;
    let mut run = |name: &str, f: &dyn Fn()| {
        if all || cmd == name {
            matched = true;
            f();
            println!();
        }
    };
    run("fig3-2", &run_fig3_2);
    run("table6-1", &run_table6_1);
    run("fig7-2", &run_fig7_2);
    run("fig7-1-peak", &run_fig7_1_peak);
    run("fig7-1-avg", &run_fig7_1_avg);
    run("fig7-3", &run_fig7_3);
    run("ch2-claims", &run_ch2);
    run("fairness", &run_fairness);
    run("ablation-net2", &run_net2);
    run("deadlock-sweep", &run_deadlock);
    run("multicast", &run_multicast);
    run("scaling", &run_scaling);
    run("ablation-quantum", &run_quantum);
    run("ablation-lookup", &run_lookup);
    run("ablation-voq", &run_voq);
    run("asm-crossbar", &run_asm);
    run("latency", &run_latency);
    run("simspeed", &run_simspeed);
    run("telemetry", &run_telemetry);
    run("chaos", &run_chaos);
    run("fabric", &run_fabric);
    run("sched", &run_sched);
    run("verify", &run_verify);
    if !matched {
        eprintln!(
            "unknown experiment '{cmd}'. Available: all fig3-2 table6-1 fig7-2 fig7-1-peak \
             fig7-1-avg fig7-3 ch2-claims fairness ablation-net2 deadlock-sweep \
             multicast scaling ablation-quantum ablation-lookup ablation-voq asm-crossbar latency \
             simspeed telemetry chaos fabric sched verify"
        );
        std::process::exit(2);
    }
}
