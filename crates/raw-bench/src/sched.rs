//! E19: the scheduler head-to-head — the paper's rotating token raced
//! against iSLIP and crosspoint-queued arbitration on the *same* router.
//!
//! Every cell runs the identical static network, switch programs, jump
//! tables, lookup path, and egress; only the per-quantum arbitration
//! policy (and, for the token baseline, the paper's FIFO ingress
//! queueing) differs. Four traffic patterns probe the policies where
//! they differ:
//!
//! * `uniform` — the paper's average-rate traffic; everyone should tie.
//! * `hotspot` — all sources target output 0; throughput is pinned at
//!   one output wire, so the interesting number is input fairness.
//! * `zipf` — a tunable hotspot (s = 1.2) between the two above.
//! * `adversary` — [`Pattern::HotInterleave`]: 5 of every 8 packets
//!   target the shared hot output, the rest a per-source distinct
//!   output that rotates over the other three. The hot output is
//!   oversubscribed 2.5x, so every FIFO head parks on a hot packet and
//!   the distinct packets trapped behind it cannot bid — the token
//!   baseline degrades toward the hot wire's drain rate. VOQ-aware
//!   matchers keep the distinct outputs streaming from backlogged
//!   queues — the acceptance floor is 2x the token's throughput.
//!
//! (A pure rotating all-to-one pattern —
//! [`Pattern::RotatingPermutation`] at `1 + skew ≡ 0 (mod N)` — does
//! *not* separate the policies: FIFO backpressure desynchronizes the
//! sources' packet indices, which spreads the phases apart and hands
//! the token conflict-free heads. The interleave keeps the conflict
//! pinned to one output no matter how the queues drift.)

use serde::Serialize;

use raw_telemetry::{shared, with_sink, Recorder, SharedSink, StageSpan};
use raw_workloads::{generate, src_addr, Arrivals, Pattern, Workload};
use raw_xbar::{IngressQueueing, RawRouter, RouterConfig, SchedKind, NPORTS};

use crate::experiments::experiment_table;

/// Words per crossbar quantum for the head-to-head. At 64-byte packets
/// one packet is exactly one fragment, so per-quantum arbitration
/// decisions dominate and the policies separate cleanly; at the default
/// 64-word quantum the serialization time washes most of it out, and
/// below ~16 words the bid/grant overhead swamps both designs equally.
pub const SCHED_QUANTUM_WORDS: usize = 32;

/// Packet size for every cell (the paper's worst case).
pub const SCHED_PACKET_BYTES: usize = 64;

/// One (scheduler, pattern) cell of the head-to-head.
#[derive(Clone, Debug, Serialize)]
pub struct SchedCell {
    pub scheduler: String,
    pub pattern: String,
    pub offered: u64,
    pub delivered: u64,
    pub cycles: u64,
    pub gbps: f64,
    /// End-to-end residence percentiles over completed packets.
    pub p50: u64,
    pub p99: u64,
    pub p999: u64,
    /// Jain fairness index over per-*input* delivered counts: 1.0 means
    /// every source got identical service, 1/N means one source
    /// monopolized the switch.
    pub input_fairness: f64,
    /// Arbitration-wait cycles summed over the ingress tiles (the
    /// `arb_wait` telemetry bucket; token mode reports `token_wait`).
    pub arb_wait_cycles: u64,
    pub token_wait_cycles: u64,
    /// Arbiter iterations and matched pairs summed over the four
    /// crossbar replicas (zero in token mode).
    pub sched_iterations: u64,
    pub sched_matched: u64,
}

/// Throughput of each matcher relative to the FIFO-token baseline on one
/// pattern.
#[derive(Clone, Debug, Serialize)]
pub struct SchedSpeedup {
    pub pattern: String,
    pub islip_over_token: f64,
    pub cq_over_token: f64,
}

/// The payload of `results/sched.json`.
#[derive(Clone, Debug, Serialize)]
pub struct SchedReport {
    pub quantum_words: usize,
    pub packet_bytes: usize,
    pub cycles: u64,
    pub cells: Vec<SchedCell>,
    pub speedups: Vec<SchedSpeedup>,
}

/// The four head-to-head patterns.
pub fn sched_patterns() -> Vec<(&'static str, Pattern)> {
    vec![
        ("uniform", Pattern::Uniform),
        ("hotspot", Pattern::Hotspot { dst: 0 }),
        ("zipf", Pattern::ZipfHotspot { s_milli: 1200 }),
        (
            "adversary",
            Pattern::HotInterleave {
                hot: 0,
                h: 5,
                m: 8,
                period: 16,
            },
        ),
    ]
}

/// The router each scheduler races in. The token baseline is the
/// paper's own configuration (FIFO ingress); the matchers require VOQ —
/// that queueing difference is part of what is being measured, since the
/// mask-bid protocol is what lets a matcher see past the head of line.
pub fn sched_router_config(kind: SchedKind) -> RouterConfig {
    RouterConfig {
        quantum_words: SCHED_QUANTUM_WORDS,
        cut_through: true,
        queueing: if kind.is_token() {
            IngressQueueing::Fifo
        } else {
            IngressQueueing::Voq
        },
        arbiter: kind,
        ..RouterConfig::default()
    }
}

fn jain(counts: &[u64]) -> f64 {
    let n = counts.len() as f64;
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sumsq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sumsq)
}

/// Run one cell: `kind` arbitrating `pattern` for `cycles` cycles under
/// saturation arrivals.
pub fn sched_cell(
    kind: SchedKind,
    pattern_name: &str,
    pattern: Pattern,
    cycles: u64,
    packets_per_port: usize,
) -> SchedCell {
    let w = Workload {
        pattern,
        arrivals: Arrivals::Saturation,
        packet_bytes: SCHED_PACKET_BYTES,
        packets_per_port,
        seed: 7,
        ttl: 64,
    };
    let sink: SharedSink = shared(Recorder::new(16, raw_sim::NUM_STATIC_NETS));
    let mut r =
        RawRouter::new_with_telemetry(sched_router_config(kind), experiment_table(), sink.clone());
    let sched = generate(&w);
    let offered = sched.len() as u64;
    for sp in sched {
        r.offer(sp.port, sp.release, &sp.packet);
    }
    r.run(cycles);
    assert_eq!(
        r.parse_errors(),
        0,
        "{}/{pattern_name}: corrupt delivery",
        kind.name()
    );
    // Measure the second half of the run: VOQ backlog diversity (and
    // the FIFO head-of-line parking it is raced against) takes tens of
    // thousands of cycles to reach steady state.
    let warm = cycles / 2;
    let gbps = r.throughput_gbps(warm, cycles);
    let delivered = r.delivered_count();

    // Jain fairness over per-input delivered counts, decoded from the
    // source address each workload packet carries.
    let mut per_input = [0u64; NPORTS];
    for p in 0..NPORTS {
        for (_, pk) in r.delivered(p) {
            let src = pk.header.src.wrapping_sub(src_addr(0)) as usize;
            assert!(src < NPORTS, "foreign source address {:#x}", pk.header.src);
            per_input[src] += 1;
        }
    }

    let (p50, p99, p999, arb_wait, token_wait) = with_sink::<Recorder, _>(&sink, |rec| {
        let h = rec.stage_histogram(StageSpan::Total);
        let (p50, _, p99, p999) = h.percentiles();
        let s = rec.summary(NPORTS);
        let arb: u64 = s.tiles.iter().map(|t| t.arb_wait).sum();
        let tok: u64 = s.tiles.iter().map(|t| t.token_wait).sum();
        (p50, p99, p999, arb, tok)
    });
    let (iters, matched) = (0..NPORTS).fold((0u64, 0u64), |(i, m), t| {
        let s = r.xb_stats[t].lock().unwrap();
        (i + s.sched_iterations, m + s.sched_matched)
    });
    SchedCell {
        scheduler: kind.name().to_string(),
        pattern: pattern_name.to_string(),
        offered,
        delivered,
        cycles,
        gbps,
        p50,
        p99,
        p999,
        input_fairness: jain(&per_input),
        arb_wait_cycles: arb_wait,
        token_wait_cycles: token_wait,
        sched_iterations: iters,
        sched_matched: matched,
    }
}

/// The full head-to-head: three schedulers × four patterns.
pub fn sched_report(cycles: u64, packets_per_port: usize) -> SchedReport {
    let mut cells = Vec::new();
    for (name, pattern) in sched_patterns() {
        for kind in SchedKind::all() {
            cells.push(sched_cell(kind, name, pattern, cycles, packets_per_port));
        }
    }
    let speedups = sched_patterns()
        .iter()
        .map(|(name, _)| {
            let gbps = |sched: &str| {
                cells
                    .iter()
                    .find(|c| c.pattern == *name && c.scheduler == sched)
                    .map(|c| c.gbps)
                    .unwrap_or(0.0)
            };
            let token = gbps("token").max(f64::MIN_POSITIVE);
            SchedSpeedup {
                pattern: name.to_string(),
                islip_over_token: gbps("islip") / token,
                cq_over_token: gbps("cq") / token,
            }
        })
        .collect();
    SchedReport {
        quantum_words: SCHED_QUANTUM_WORDS,
        packet_bytes: SCHED_PACKET_BYTES,
        cycles,
        cells,
        speedups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversary_pattern_separates_matchers_from_fifo_token() {
        // A short run of the acceptance row: both matchers must clear
        // the 2x floor over the FIFO-token baseline.
        let (name, pattern) = sched_patterns().pop().unwrap();
        assert_eq!(name, "adversary");
        let cells: Vec<SchedCell> = SchedKind::all()
            .into_iter()
            .map(|k| sched_cell(k, name, pattern, 120_000, 4000))
            .collect();
        let token = &cells[0];
        assert_eq!(token.scheduler, "token");
        for c in &cells[1..] {
            assert!(
                c.gbps >= 2.0 * token.gbps,
                "{}: {:.3} gbps vs token {:.3} gbps",
                c.scheduler,
                c.gbps,
                token.gbps
            );
            assert!(c.sched_matched > 0);
        }
    }

    #[test]
    fn uniform_pattern_is_fair_under_every_scheduler() {
        for kind in SchedKind::all() {
            let c = sched_cell(kind, "uniform", Pattern::Uniform, 30_000, 800);
            assert!(c.delivered > 0, "{}", c.scheduler);
            assert!(
                c.input_fairness > 0.98,
                "{}: Jain {:.4}",
                c.scheduler,
                c.input_fairness
            );
            assert!(c.p50 > 0 && c.p99 >= c.p50 && c.p999 >= c.p99);
        }
    }
}
