//! Simulator-performance measurement (`repro -- simspeed`).
//!
//! Times representative workloads under all three cycle engines —
//! per-cycle interpreter, event-skip, and the schedule-specialization
//! compiled engine — and reports simulated Mcycles per wall-clock
//! second. Each scenario also produces a result fingerprint so the
//! table doubles as a determinism check: a speedup is only admissible
//! if every engine computed the same thing.
//!
//! Scenarios:
//! - `router-peak-64B` / `router-peak-1024B`: the Figure 7-1 peak
//!   pipeline at saturation. Line cards offer a word every cycle, so
//!   event-skip never engages — these rows isolate the compiled
//!   engine's pre-resolved step structures against the interpreter.
//! - `router-avg-64B` / `router-avg-1024B`: the Figure 7-1 "average"
//!   corner (uniform random destinations instead of the peak
//!   permutation), where contention stalls reshape the hot path.
//! - `drip-feed`: a 4-hop static-network pipe throttled by a
//!   rate-limited sink, quiet most cycles — these rows isolate the skip.
//! - `idle-fabric`: a fully idle machine, the skip's upper bound.
//!
//! Every (scenario, engine) cell is timed `repeats` times and the
//! median wall time is reported, because single runs on shared machines
//! jitter by ±10% — enough to fake or hide a 1.3× effect.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use raw_sim::{
    Dir, EdgePort, EngineMode, RawConfig, RawMachine, Route, SwPort, SwitchCtrl, SwitchInstr,
    SwitchProgram, WordSink, WordSource, NET0,
};
use raw_workloads::{generate, Workload};
use raw_xbar::{RawRouter, RouterConfig};

use crate::experiment_table;

/// The engine sweep order; per-cycle first so every later row's speedup
/// denominator precedes it in the table.
pub const ENGINES: [EngineMode; 3] = [
    EngineMode::PerCycle,
    EngineMode::EventSkip,
    EngineMode::Compiled,
];

/// Stable engine label used in reports and JSON.
pub fn engine_name(e: EngineMode) -> &'static str {
    match e {
        EngineMode::PerCycle => "per-cycle",
        EngineMode::EventSkip => "event-skip",
        EngineMode::Compiled => "compiled",
    }
}

/// One timed cell: one scenario under one engine (median of `repeats`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedRow {
    pub scenario: String,
    pub engine: String,
    /// Simulated cycles executed.
    pub sim_cycles: u64,
    /// Median wall time across repeats.
    pub wall_ms: f64,
    /// Simulated megacycles per wall-clock second (the unit every
    /// consumer of this table uses, including the criterion group).
    pub mcycles_per_sec: f64,
    /// Scenario-defined digest of the simulation's observable results;
    /// must match across all engine modes.
    pub fingerprint: String,
}

/// The full `simspeed` report: the engine × scenario matrix plus
/// per-scenario speedup summaries.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedReport {
    /// Cycles simulated per router scenario (`1x` = the default span).
    pub router_cycles: u64,
    /// Timing repeats behind each median.
    pub repeats: u32,
    pub rows: Vec<SpeedRow>,
    pub speedups: Vec<ScenarioSpeedup>,
}

/// Per-scenario speedup matrix, all ratios of median wall times.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioSpeedup {
    pub scenario: String,
    /// wall(per-cycle) / wall(event-skip).
    pub event_skip_vs_per_cycle: f64,
    /// wall(per-cycle) / wall(compiled).
    pub compiled_vs_per_cycle: f64,
    /// wall(event-skip) / wall(compiled) — the tentpole's headline.
    pub compiled_vs_event_skip: f64,
    pub fingerprints_match: bool,
}

/// Time `body` `repeats` times; return (cycles, median wall ms, fp).
/// The fingerprint must be identical across repeats (deterministic
/// simulation), which is asserted.
fn time_run(repeats: u32, mut body: impl FnMut() -> (u64, String)) -> (u64, f64, String) {
    let mut walls = Vec::with_capacity(repeats as usize);
    let mut out: Option<(u64, String)> = None;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let (cycles, fp) = body();
        walls.push(t0.elapsed().as_secs_f64() * 1e3);
        if let Some((c0, fp0)) = &out {
            assert_eq!(
                (*c0, fp0.as_str()),
                (cycles, fp.as_str()),
                "nondeterministic run"
            );
        } else {
            out = Some((cycles, fp));
        }
    }
    walls.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = walls[walls.len() / 2];
    let (cycles, fp) = out.unwrap();
    (cycles, median, fp)
}

fn router_scenario(w: &Workload, span: u64, engine: EngineMode) -> (u64, String) {
    let quantum = w.packet_bytes / 4;
    let mut cfg = RouterConfig {
        quantum_words: quantum,
        cut_through: true,
        ..RouterConfig::default()
    };
    cfg.raw.engine = engine;
    // `RawRouter` compiles its own fabric at construction when the
    // compiled engine is selected, so nothing more to do here.
    let mut r = RawRouter::new(cfg, experiment_table());
    for sp in generate(w) {
        r.offer(sp.port, sp.release, &sp.packet);
    }
    r.run(span);
    let warm = (span / 10).min(20_000);
    let fp = format!(
        "delivered={} gbps={:.6} mpps={:.6} errors={}",
        r.delivered_count(),
        r.throughput_gbps(warm, span),
        r.pps(warm, span) / 1e6,
        r.parse_errors()
    );
    (span, fp)
}

/// A word source feeding a straight 4-hop pipe across the top row into a
/// sink that accepts one word every `interval` cycles: the machine is
/// provably quiet between accept windows, so almost every cycle is
/// skippable.
fn drip_scenario(words: u32, interval: u64, engine: EngineMode) -> (u64, String) {
    let cfg = RawConfig {
        engine,
        ..RawConfig::default()
    };
    let dim = cfg.dim;
    let mut m = RawMachine::new(cfg);
    let forward = SwitchProgram::new(vec![SwitchInstr::new(
        vec![Route::new(
            NET0,
            SwPort::from_dir(Dir::West),
            SwPort::from_dir(Dir::East),
        )],
        SwitchCtrl::Jump(0),
    )]);
    for c in 0..dim.cols {
        m.set_switch_program(dim.tile(0, c), NET0, forward.clone());
    }
    m.bind_device(
        EdgePort::new(dim.tile(0, 0), Dir::West, NET0),
        Box::new(WordSource::new(0..words)),
    );
    let (sink, collected) = WordSink::rate_limited(interval);
    m.bind_device(
        EdgePort::new(dim.tile(0, dim.cols - 1), Dir::East, NET0),
        Box::new(sink),
    );
    if engine == EngineMode::Compiled {
        raw_compile::compile_machine(&mut m, &raw_compile::CompileOptions::default())
            .expect("drip fabric compiles");
    }
    let span = (words as u64 + 16) * interval;
    m.run(span);
    let got = collected.lock().unwrap();
    let digest = got.iter().fold(0u64, |acc, &(cyc, w)| {
        acc.wrapping_mul(0x100000001b3).wrapping_add(cyc ^ w as u64)
    });
    (span, format!("delivered={} digest={digest:#x}", got.len()))
}

/// One drip-feed run, exposed for the `sim_speed` micro-benchmarks.
pub fn simspeed_drip_once(words: u32, interval: u64, engine: EngineMode) -> (u64, String) {
    drip_scenario(words, interval, engine)
}

/// One Figure 7-1 router run, exposed for the `compiled_step` criterion
/// group: peak workload at `bytes`, `span` machine cycles.
pub fn simspeed_router_once(bytes: usize, span: u64, engine: EngineMode) -> (u64, String) {
    let packets = ((span as usize) / (bytes / 4)).clamp(64, 8000);
    router_scenario(&Workload::peak(bytes, packets), span, engine)
}

/// A machine with no programs, no devices, nothing to do.
fn idle_scenario(span: u64, engine: EngineMode) -> (u64, String) {
    let cfg = RawConfig {
        engine,
        ..RawConfig::default()
    };
    let mut m = RawMachine::new(cfg);
    if engine == EngineMode::Compiled {
        raw_compile::compile_machine(&mut m, &raw_compile::CompileOptions::default())
            .expect("idle fabric compiles");
    }
    m.run(span);
    let idle: u64 = (0..m.last_activities().len())
        .map(|t| m.stats(raw_sim::TileId(t as u16)).counts[0])
        .sum();
    (span, format!("cycle={} idle_cycles={idle}", m.cycle()))
}

type Scenario = (String, Box<dyn Fn(EngineMode) -> (u64, String)>);

/// Run every scenario under every engine. `router_cycles` scales the
/// router scenarios (the CI smoke test passes a small span; the default
/// matches the Figure 7-1 measurement run). `repeats` runs behind each
/// median — use 1 for smoke, 3+ for reportable numbers.
pub fn simspeed_with(router_cycles: u64, repeats: u32) -> SpeedReport {
    let drip_words = (router_cycles / 64).clamp(64, 4_000) as u32;
    let peak_packets = move |bytes: usize| ((router_cycles as usize) / (bytes / 4)).clamp(64, 8000);
    let scenarios: Vec<Scenario> = vec![
        (
            "router-peak-64B".into(),
            Box::new(move |e| {
                router_scenario(&Workload::peak(64, peak_packets(64)), router_cycles, e)
            }),
        ),
        (
            "router-peak-1024B".into(),
            Box::new(move |e| {
                router_scenario(&Workload::peak(1024, peak_packets(1024)), router_cycles, e)
            }),
        ),
        (
            "router-avg-64B".into(),
            Box::new(move |e| {
                router_scenario(
                    &Workload::average(64, peak_packets(64) / 2, 7),
                    router_cycles,
                    e,
                )
            }),
        ),
        (
            "router-avg-1024B".into(),
            Box::new(move |e| {
                router_scenario(
                    &Workload::average(1024, peak_packets(1024) / 2, 7),
                    router_cycles,
                    e,
                )
            }),
        ),
        (
            "drip-feed".into(),
            Box::new(move |e| drip_scenario(drip_words, 64, e)),
        ),
        (
            "idle-fabric".into(),
            Box::new(move |e| idle_scenario(router_cycles.max(1_000_000), e)),
        ),
    ];

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (name, run) in &scenarios {
        let mut cells = Vec::new();
        for engine in ENGINES {
            let (cycles, wall_ms, fingerprint) = time_run(repeats, || run(engine));
            cells.push(SpeedRow {
                scenario: name.clone(),
                engine: engine_name(engine).into(),
                sim_cycles: cycles,
                wall_ms,
                mcycles_per_sec: cycles as f64 / (wall_ms / 1e3) / 1e6,
                fingerprint,
            });
        }
        let (pc, es, co) = (&cells[0], &cells[1], &cells[2]);
        speedups.push(ScenarioSpeedup {
            scenario: name.clone(),
            event_skip_vs_per_cycle: pc.wall_ms / es.wall_ms,
            compiled_vs_per_cycle: pc.wall_ms / co.wall_ms,
            compiled_vs_event_skip: es.wall_ms / co.wall_ms,
            fingerprints_match: pc.fingerprint == es.fingerprint
                && es.fingerprint == co.fingerprint,
        });
        rows.extend(cells);
    }
    SpeedReport {
        router_cycles,
        repeats,
        rows,
        speedups,
    }
}

/// [`simspeed_with`] at single-shot timing (CI smoke and tests).
pub fn simspeed(router_cycles: u64) -> SpeedReport {
    simspeed_with(router_cycles, 1)
}

/// One scenario line of the CI-diffable `BENCH_simspeed.json` digest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchScenario {
    pub scenario: String,
    pub per_cycle_mcps: f64,
    pub event_skip_mcps: f64,
    pub compiled_mcps: f64,
    pub event_skip_vs_per_cycle: f64,
    pub compiled_vs_per_cycle: f64,
    pub compiled_vs_event_skip: f64,
    pub fingerprints_match: bool,
}

/// The digest written to `BENCH_simspeed.json` at the repo root:
/// per-scenario Mcycles/s per engine plus the speedup matrix, rounded
/// to two decimals, with no raw wall times.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchDigest {
    pub router_cycles: u64,
    pub repeats: u32,
    pub scenarios: Vec<BenchScenario>,
}

pub fn bench_digest(rep: &SpeedReport) -> BenchDigest {
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let mcps = |scenario: &str, engine: &str| {
        rep.rows
            .iter()
            .find(|r| r.scenario == scenario && r.engine == engine)
            .map(|r| round2(r.mcycles_per_sec))
            .unwrap_or(0.0)
    };
    BenchDigest {
        router_cycles: rep.router_cycles,
        repeats: rep.repeats,
        scenarios: rep
            .speedups
            .iter()
            .map(|s| BenchScenario {
                scenario: s.scenario.clone(),
                per_cycle_mcps: mcps(&s.scenario, "per-cycle"),
                event_skip_mcps: mcps(&s.scenario, "event-skip"),
                compiled_mcps: mcps(&s.scenario, "compiled"),
                event_skip_vs_per_cycle: round2(s.event_skip_vs_per_cycle),
                compiled_vs_per_cycle: round2(s.compiled_vs_per_cycle),
                compiled_vs_event_skip: round2(s.compiled_vs_event_skip),
                fingerprints_match: s.fingerprints_match,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_every_scenario() {
        let rep = simspeed(20_000);
        for s in &rep.speedups {
            assert!(
                s.fingerprints_match,
                "{}: engines diverged on observable results",
                s.scenario
            );
        }
        // 6 scenarios × 3 engines.
        assert_eq!(rep.rows.len(), 18);
        assert!(rep.rows.iter().all(|r| r.mcycles_per_sec > 0.0));
    }

    #[test]
    fn drip_feed_skips_most_cycles() {
        // The throttled pipe must produce identical deliveries in every
        // mode (the digest covers cycle stamps, not just values).
        let (c1, fp1) = drip_scenario(256, 64, EngineMode::EventSkip);
        let (c2, fp2) = drip_scenario(256, 64, EngineMode::PerCycle);
        let (c3, fp3) = drip_scenario(256, 64, EngineMode::Compiled);
        assert_eq!(c1, c2);
        assert_eq!(fp1, fp2);
        assert_eq!(c1, c3);
        assert_eq!(fp1, fp3);
        assert!(fp1.contains("delivered=256"));
    }
}
