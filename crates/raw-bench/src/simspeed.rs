//! Simulator-performance measurement (`repro -- simspeed`).
//!
//! Times representative workloads under the cycle engine and reports
//! simulated cycles per wall-clock second, with the event-skip
//! fast-forward enabled and disabled. Each scenario also produces a
//! result fingerprint so the table doubles as a determinism check: a
//! speedup is only admissible if both modes computed the same thing.
//!
//! Scenarios:
//! - `router-64B` / `router-1024B`: the Figure 7-1 peak pipeline at
//!   saturation. Line cards offer a word every cycle, so the skip never
//!   engages — these rows isolate the zero-allocation hot path.
//! - `drip-feed`: a 4-hop static-network pipe throttled by a
//!   rate-limited sink, quiet most cycles — these rows isolate the skip.
//! - `idle-fabric`: a fully idle machine, the skip's upper bound.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use raw_sim::{
    Dir, EdgePort, RawConfig, RawMachine, Route, SwPort, SwitchCtrl, SwitchInstr, SwitchProgram,
    WordSink, WordSource, NET0,
};
use raw_workloads::{generate, Workload};
use raw_xbar::{RawRouter, RouterConfig};

use crate::experiment_table;

/// One timed run of one scenario in one engine mode.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedRow {
    pub scenario: String,
    pub fast_forward: bool,
    /// Simulated cycles executed.
    pub sim_cycles: u64,
    pub wall_ms: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Scenario-defined digest of the simulation's observable results;
    /// must match between the two engine modes.
    pub fingerprint: String,
}

/// The full `simspeed` report: paired rows plus per-scenario speedups.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedReport {
    /// Cycles simulated per router scenario (`1x` = the default span).
    pub router_cycles: u64,
    pub rows: Vec<SpeedRow>,
    pub speedups: Vec<ScenarioSpeedup>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioSpeedup {
    pub scenario: String,
    /// wall(per-cycle) / wall(fast-forward).
    pub speedup: f64,
    pub fingerprints_match: bool,
}

fn time_run(mut body: impl FnMut() -> (u64, String)) -> (u64, f64, String) {
    let t0 = Instant::now();
    let (cycles, fp) = body();
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    (cycles, wall, fp)
}

fn router_scenario(bytes: usize, span: u64, fast_forward: bool) -> (u64, String) {
    let quantum = bytes / 4;
    let mut cfg = RouterConfig {
        quantum_words: quantum,
        cut_through: true,
        ..RouterConfig::default()
    };
    cfg.raw.fast_forward = fast_forward;
    let mut r = RawRouter::new(cfg, experiment_table());
    let packets = ((span as usize) / (bytes / 4)).clamp(64, 8000);
    for sp in generate(&Workload::peak(bytes, packets)) {
        r.offer(sp.port, sp.release, &sp.packet);
    }
    r.run(span);
    let warm = (span / 10).min(20_000);
    let fp = format!(
        "delivered={} gbps={:.6} mpps={:.6} errors={}",
        r.delivered_count(),
        r.throughput_gbps(warm, span),
        r.pps(warm, span) / 1e6,
        r.parse_errors()
    );
    (span, fp)
}

/// A word source feeding a straight 4-hop pipe across the top row into a
/// sink that accepts one word every `interval` cycles: the machine is
/// provably quiet between accept windows, so almost every cycle is
/// skippable.
fn drip_scenario(words: u32, interval: u64, fast_forward: bool) -> (u64, String) {
    let cfg = RawConfig {
        fast_forward,
        ..RawConfig::default()
    };
    let dim = cfg.dim;
    let mut m = RawMachine::new(cfg);
    let forward = SwitchProgram::new(vec![SwitchInstr::new(
        vec![Route::new(
            NET0,
            SwPort::from_dir(Dir::West),
            SwPort::from_dir(Dir::East),
        )],
        SwitchCtrl::Jump(0),
    )]);
    for c in 0..dim.cols {
        m.set_switch_program(dim.tile(0, c), NET0, forward.clone());
    }
    m.bind_device(
        EdgePort::new(dim.tile(0, 0), Dir::West, NET0),
        Box::new(WordSource::new(0..words)),
    );
    let (sink, collected) = WordSink::rate_limited(interval);
    m.bind_device(
        EdgePort::new(dim.tile(0, dim.cols - 1), Dir::East, NET0),
        Box::new(sink),
    );
    let span = (words as u64 + 16) * interval;
    m.run(span);
    let got = collected.lock().unwrap();
    let digest = got.iter().fold(0u64, |acc, &(cyc, w)| {
        acc.wrapping_mul(0x100000001b3).wrapping_add(cyc ^ w as u64)
    });
    (span, format!("delivered={} digest={digest:#x}", got.len()))
}

/// One drip-feed run, exposed for the `sim_speed` micro-benchmarks.
pub fn simspeed_drip_once(words: u32, interval: u64, fast_forward: bool) -> (u64, String) {
    drip_scenario(words, interval, fast_forward)
}

/// A machine with no programs, no devices, nothing to do.
fn idle_scenario(span: u64, fast_forward: bool) -> (u64, String) {
    let cfg = RawConfig {
        fast_forward,
        ..RawConfig::default()
    };
    let mut m = RawMachine::new(cfg);
    m.run(span);
    let idle: u64 = (0..m.last_activities().len())
        .map(|t| m.stats(raw_sim::TileId(t as u16)).counts[0])
        .sum();
    (span, format!("cycle={} idle_cycles={idle}", m.cycle()))
}

/// Run every scenario in both engine modes. `router_cycles` scales the
/// router scenarios (the CI smoke test passes a small span; the default
/// matches the Figure 7-1 measurement run).
type Scenario = (String, Box<dyn Fn(bool) -> (u64, String)>);

pub fn simspeed(router_cycles: u64) -> SpeedReport {
    let drip_words = (router_cycles / 64).clamp(64, 4_000) as u32;
    let scenarios: Vec<Scenario> = vec![
        (
            "router-64B".into(),
            Box::new(move |ff| router_scenario(64, router_cycles, ff)),
        ),
        (
            "router-1024B".into(),
            Box::new(move |ff| router_scenario(1024, router_cycles, ff)),
        ),
        (
            "drip-feed".into(),
            Box::new(move |ff| drip_scenario(drip_words, 64, ff)),
        ),
        (
            "idle-fabric".into(),
            Box::new(move |ff| idle_scenario(router_cycles.max(1_000_000), ff)),
        ),
    ];

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (name, run) in &scenarios {
        let mut pair = Vec::new();
        for ff in [true, false] {
            let (cycles, wall_ms, fingerprint) = time_run(|| run(ff));
            pair.push(SpeedRow {
                scenario: name.clone(),
                fast_forward: ff,
                sim_cycles: cycles,
                wall_ms,
                cycles_per_sec: cycles as f64 / (wall_ms / 1e3),
                fingerprint,
            });
        }
        let (ff_row, ref_row) = (&pair[0], &pair[1]);
        speedups.push(ScenarioSpeedup {
            scenario: name.clone(),
            speedup: ref_row.wall_ms / ff_row.wall_ms,
            fingerprints_match: ff_row.fingerprint == ref_row.fingerprint,
        });
        rows.extend(pair);
    }
    SpeedReport {
        router_cycles,
        rows,
        speedups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_agree_on_every_scenario() {
        let rep = simspeed(20_000);
        for s in &rep.speedups {
            assert!(
                s.fingerprints_match,
                "{}: fast-forward diverged from per-cycle stepping",
                s.scenario
            );
        }
        assert_eq!(rep.rows.len(), 8);
    }

    #[test]
    fn drip_feed_skips_most_cycles() {
        // The throttled pipe must produce identical deliveries in both
        // modes (the digest covers cycle stamps, not just values).
        let (c1, fp1) = drip_scenario(256, 64, true);
        let (c2, fp2) = drip_scenario(256, 64, false);
        assert_eq!(c1, c2);
        assert_eq!(fp1, fp2);
        assert!(fp1.contains("delivered=256"));
    }
}
