//! One-cell probe for sizing/wedge diagnosis:
//! fabric_probe <topology> <spray> <epoch> <ppp> [threaded] [drain]
//!
//! Default mode steps in 50-epoch chunks with per-chunk progress (so a
//! wedged cell shows *where* it stopped moving); `drain` mode runs the
//! exact `run_until_drained` path the fabric experiment uses.

use raw_fabric::{FabricConfig, RawFabric, SprayMode, Topology};
use raw_workloads::{generate_n, Arrivals, Pattern, Workload};

fn main() {
    let a: Vec<String> = std::env::args().skip(1).collect();
    let topology = match a[0].as_str() {
        "single4" => Topology::Single4,
        "folded8" => Topology::Folded8,
        _ => Topology::Clos16,
    };
    let spray = if a[1] == "lo" {
        SprayMode::LeastOccupancy
    } else {
        SprayMode::Hash
    };
    let epoch: u64 = a[2].parse().unwrap();
    let ppp: usize = a[3].parse().unwrap();
    let threaded = a.get(4).map(String::as_str) == Some("threaded");
    let cfg = FabricConfig {
        topology,
        epoch_cycles: epoch,
        spray,
        ..FabricConfig::default()
    };
    let w = Workload {
        pattern: Pattern::FabricUniform,
        arrivals: Arrivals::Saturation,
        packet_bytes: 64,
        packets_per_port: ppp,
        seed: 42,
        ttl: 64,
    };
    let mut fab = RawFabric::try_new(cfg).unwrap();
    for s in generate_n(&w, topology.ext_ports()) {
        fab.offer(s.port, s.release, &s.packet);
    }
    let t0 = std::time::Instant::now();
    if a.get(5).map(String::as_str) == Some("drain") {
        let ok = fab.run_until_drained(500_000, threaded);
        eprintln!(
            "drained={ok} epochs {} delivered {}/{} dropped {} [{:?}]",
            fab.epochs_run(),
            fab.delivered_count(),
            fab.offered(),
            fab.dropped_count(),
            t0.elapsed()
        );
        eprintln!("errors: {:?}", fab.conservation_errors());
        return;
    }
    // Step in chunks so progress is visible.
    for chunk in 0..200 {
        fab.run_epochs(50, threaded);
        eprintln!(
            "chunk {chunk}: epochs {} cycle {} delivered {}/{} dropped {} [{:?}]",
            fab.epochs_run(),
            fab.cycle(),
            fab.delivered_count(),
            fab.offered(),
            fab.dropped_count(),
            t0.elapsed()
        );
        if fab.delivered_count() + fab.dropped_count() >= fab.offered() {
            break;
        }
    }
    eprintln!("errors: {:?}", fab.conservation_errors());
}
