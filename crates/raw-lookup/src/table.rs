//! Routing-table generation and the Lookup Processor's cycle-cost model.
//!
//! The router maps destination IP addresses to one of its output ports.
//! The network processor builds per-port forwarding tables (§2.2.1); for
//! experiments we synthesize tables with realistic prefix-length mixes
//! and derive the cycles a Lookup Processor spends per lookup from the
//! memory accesses each structure performs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dir24::Dir24_8;
use crate::patricia::{PatriciaTable, RouteEntry};

/// Next-hop values at or above this flag encode a multicast port set in
/// their low bits (`next_hop = MULTICAST_FLAG | mask`). Class-D prefixes
/// installed by a multicast routing protocol use this form; unicast
/// routes store a plain port number.
pub const MULTICAST_FLAG: u32 = 0x100;

/// Decoded next hop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Hop {
    Unicast(u32),
    /// A set of output ports (bit `p` = port `p`).
    Multicast(u8),
}

/// Decode a stored next-hop value.
pub fn decode_hop(next_hop: u32) -> Hop {
    if next_hop >= MULTICAST_FLAG {
        Hop::Multicast((next_hop & 0xf) as u8)
    } else {
        Hop::Unicast(next_hop)
    }
}

/// Encode a multicast port set as a next-hop value.
pub fn encode_multicast(mask: u8) -> u32 {
    assert!(mask != 0 && mask < 16);
    MULTICAST_FLAG | mask as u32
}

/// Generate `n` distinct random prefixes mapping to `ports` next hops.
/// The prefix-length distribution is weighted toward /16–/24, the shape
/// of real BGP tables (a /0 default route is always included).
pub fn synth_table(n: usize, ports: u32, seed: u64) -> Vec<RouteEntry> {
    assert!(ports >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![RouteEntry::new(0, 0, rng.gen_range(0..ports))];
    let mut seen = std::collections::HashSet::new();
    seen.insert((0u32, 0u8));
    while out.len() < n {
        let len: u8 = match rng.gen_range(0..100) {
            0..=9 => rng.gen_range(8..=15),
            10..=54 => rng.gen_range(16..=23),
            55..=94 => 24,
            _ => rng.gen_range(25..=32),
        };
        let prefix = crate::patricia::mask(rng.gen::<u32>(), len);
        if seen.insert((prefix, len)) {
            out.push(RouteEntry::new(prefix, len, rng.gen_range(0..ports)));
        }
    }
    out
}

/// Addresses drawn to hit the table: with probability `hit_bias` an
/// address inside a random route's prefix, else uniform.
pub fn synth_addresses(routes: &[RouteEntry], n: usize, hit_bias: f64, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if !routes.is_empty() && rng.gen_bool(hit_bias) {
                let r = routes[rng.gen_range(0..routes.len())];
                let host_bits = 32 - r.len as u32;
                let noise = if host_bits == 0 {
                    0
                } else {
                    rng.gen::<u32>() & (u32::MAX >> (32 - host_bits))
                };
                r.prefix | noise
            } else {
                rng.gen()
            }
        })
        .collect()
}

/// Cycle-cost model for a lookup on the Raw Lookup Processor: each
/// data-structure memory access costs `cycles_per_access` (a cached local
/// access is ~3 cycles; the off-chip table of §4.2 costs more), plus a
/// fixed instruction overhead.
#[derive(Clone, Copy, Debug)]
pub struct LookupCostModel {
    pub fixed_overhead: u32,
    pub cycles_per_access: u32,
}

impl Default for LookupCostModel {
    fn default() -> Self {
        // A handful of instructions to unpack the header and reply, plus
        // cached-table accesses.
        LookupCostModel {
            fixed_overhead: 6,
            cycles_per_access: 3,
        }
    }
}

impl LookupCostModel {
    pub fn cost(&self, accesses: u32) -> u32 {
        self.fixed_overhead + self.cycles_per_access * accesses
    }
}

/// A forwarding table bundling both structures, with a common interface
/// for the router and the benchmarks.
pub struct ForwardingTable {
    pub patricia: PatriciaTable,
    pub dir: Dir24_8,
    pub cost: LookupCostModel,
}

/// Which lookup engine the router uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    Patricia,
    Dir24_8,
}

impl ForwardingTable {
    pub fn build(routes: &[RouteEntry]) -> ForwardingTable {
        ForwardingTable::build_with_l1_bits(routes, 24)
    }

    /// Build with a reduced DIR level-1 split (see [`DirTable::with_bits`]).
    /// The canonical 24-bit level 1 is a 2^24-slot array — fine for one
    /// router, prohibitive when a fabric instantiates a dozen tables per
    /// construction. A 16-bit split runs the identical algorithm in
    /// 2^16 slots; use it wherever the DIR engine's memory layout is not
    /// itself under measurement.
    pub fn build_with_l1_bits(routes: &[RouteEntry], l1_bits: u8) -> ForwardingTable {
        let mut patricia = PatriciaTable::new();
        for r in routes {
            patricia.insert(*r);
        }
        ForwardingTable {
            patricia,
            dir: Dir24_8::with_bits(routes, l1_bits),
            cost: LookupCostModel::default(),
        }
    }

    /// Lookup with `engine`, returning `(next_hop, cycles)`.
    pub fn lookup(&self, engine: Engine, addr: u32) -> (Option<u32>, u32) {
        let (hop, accesses) = match engine {
            Engine::Patricia => self.patricia.lookup_traced(addr),
            Engine::Dir24_8 => self.dir.lookup_traced(addr),
        };
        (hop, self.cost.cost(accesses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_table_has_default_and_size() {
        let t = synth_table(1000, 4, 1);
        assert_eq!(t.len(), 1000);
        assert!(t.iter().any(|r| r.len == 0), "default route present");
        assert!(t.iter().all(|r| r.next_hop < 4));
        // Deterministic.
        assert_eq!(synth_table(1000, 4, 1)[10].prefix, t[10].prefix);
    }

    #[test]
    fn engines_agree_on_synthetic_tables() {
        let routes = synth_table(2000, 4, 7);
        let ft = ForwardingTable::build(&routes);
        for addr in synth_addresses(&routes, 5000, 0.8, 8) {
            let (a, _) = ft.lookup(Engine::Patricia, addr);
            let (b, _) = ft.lookup(Engine::Dir24_8, addr);
            assert_eq!(a, b, "engines disagree on {addr:#x}");
        }
    }

    #[test]
    fn dir_is_constant_accesses() {
        let routes = synth_table(2000, 4, 3);
        let ft = ForwardingTable::build(&routes);
        for addr in synth_addresses(&routes, 1000, 0.9, 4) {
            let (_, cost) = ft.lookup(Engine::Dir24_8, addr);
            let model = ft.cost;
            assert!(cost <= model.cost(2));
        }
    }

    #[test]
    fn every_address_hits_default_route() {
        let routes = synth_table(100, 4, 11);
        let ft = ForwardingTable::build(&routes);
        for addr in [0u32, u32::MAX, 0x12345678] {
            assert!(ft.lookup(Engine::Patricia, addr).0.is_some());
            assert!(ft.lookup(Engine::Dir24_8, addr).0.is_some());
        }
    }

    #[test]
    fn multicast_hops_roundtrip() {
        assert_eq!(decode_hop(2), Hop::Unicast(2));
        assert_eq!(decode_hop(encode_multicast(0b1011)), Hop::Multicast(0b1011));
        // A class-D route through the trie carries the encoding intact.
        let routes = vec![
            RouteEntry::new(0, 0, 1),
            RouteEntry::new(0xe000_0000, 4, encode_multicast(0b0110)),
        ];
        let ft = ForwardingTable::build(&routes);
        let (hop, _) = ft.lookup(Engine::Patricia, 0xe000_0001);
        assert_eq!(decode_hop(hop.unwrap()), Hop::Multicast(0b0110));
        let (hop, _) = ft.lookup(Engine::Dir24_8, 0xe000_0001);
        assert_eq!(decode_hop(hop.unwrap()), Hop::Multicast(0b0110));
    }

    #[test]
    fn cost_model_scales() {
        let m = LookupCostModel::default();
        assert_eq!(m.cost(1), 9);
        assert_eq!(m.cost(2), 12);
        assert!(m.cost(32) > m.cost(2), "trie worst case costs more");
    }
}
