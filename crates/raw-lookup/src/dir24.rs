//! A DIR-24-8 style two-level "small forwarding table".
//!
//! §8.2 cites Degermark et al.'s *Small Forwarding Tables for Fast
//! Routing Lookups* as the direction for a competitive lookup engine on
//! Raw. We implement the classic two-level direct-index organization in
//! that spirit: a first level indexed by the top `L1_BITS` address bits
//! (24 in the canonical configuration) resolves almost every lookup in
//! **one** memory access; longer prefixes chain to second-level blocks
//! (a second access). This trades memory for a constant two-access worst
//! case — exactly the trade a wire-speed Lookup Processor wants.
//!
//! The level split is parameterizable ([`DirTable::with_bits`]) so tests
//! can exercise the identical algorithm without allocating the full
//! 2^24-entry array; [`Dir24_8`] is the canonical 24/8 instance.

use crate::patricia::{mask, RouteEntry};

/// Packed first-level entry: `[31:30]` kind (0 empty, 1 hop, 2 pointer),
/// `[29:24]` owning prefix length, `[23:0]` value (next hop or block
/// index).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct L1(u32);

const KIND_EMPTY: u32 = 0;
const KIND_HOP: u32 = 1;
const KIND_PTR: u32 = 2;

impl L1 {
    fn new(kind: u32, plen: u8, value: u32) -> L1 {
        debug_assert!(value < (1 << 24), "DIR table values are 24-bit");
        L1((kind << 30) | ((plen as u32) << 24) | value)
    }

    fn kind(self) -> u32 {
        self.0 >> 30
    }

    fn plen(self) -> u8 {
        ((self.0 >> 24) & 0x3f) as u8
    }

    fn value(self) -> u32 {
        self.0 & 0xff_ffff
    }
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct L2 {
    plen: u8,
    kind: u8,
    hop: u32,
}

/// The two-level table, split at `l1_bits`. Built once from a route
/// list; rebuilt on change (routing-table updates are off the fast path,
/// managed by the network processor, §2.2.1).
pub struct DirTable {
    l1_bits: u8,
    l1: Vec<L1>,
    l2: Vec<Vec<L2>>,
    routes: usize,
}

/// The canonical DIR-24-8 configuration.
pub type Dir24_8 = DirTable;

impl DirTable {
    /// Build with the canonical 24-bit first level.
    pub fn build(routes: &[RouteEntry]) -> DirTable {
        DirTable::with_bits(routes, 24)
    }

    /// Build with a `l1_bits`-bit first level (16..=24). Prefixes no
    /// longer than `l1_bits` live in level 1; longer ones chain to
    /// level-2 blocks of `2^(32 - l1_bits)` slots, one per address.
    pub fn with_bits(routes: &[RouteEntry], l1_bits: u8) -> DirTable {
        assert!(
            (16..=24).contains(&l1_bits),
            "level-2 blocks index all remaining bits"
        );
        let mut t = DirTable {
            l1_bits,
            l1: vec![L1::default(); 1usize << l1_bits],
            l2: Vec::new(),
            routes: 0,
        };
        // Deduplicate exact prefixes: the last occurrence in input order
        // wins, matching PatriciaTable::insert replacement semantics.
        let mut chosen: Vec<RouteEntry> = Vec::with_capacity(routes.len());
        for r in routes {
            let key = (mask(r.prefix, r.len), r.len);
            match chosen.iter_mut().find(|c| (c.prefix, c.len) == key) {
                Some(c) => c.next_hop = r.next_hop,
                None => chosen.push(RouteEntry::new(r.prefix, r.len, r.next_hop)),
            }
        }
        // Insert short prefixes first so longer ones overwrite (stable).
        chosen.sort_by_key(|r| r.len);
        for r in chosen {
            t.insert(r);
        }
        t
    }

    fn l2_block_len(&self) -> usize {
        1usize << (32 - self.l1_bits as u32)
    }

    fn insert(&mut self, r: RouteEntry) {
        self.routes += 1;
        let l1_bits = self.l1_bits;
        if r.len <= l1_bits {
            let start = (mask(r.prefix, r.len) >> (32 - l1_bits as u32)) as usize;
            let count = 1usize << (l1_bits - r.len) as usize;
            for i in start..start + count {
                let slot = self.l1[i];
                match slot.kind() {
                    KIND_PTR => {
                        let blk = &mut self.l2[slot.value() as usize];
                        for e in blk.iter_mut() {
                            if e.kind == 0 || e.plen <= r.len {
                                *e = L2 {
                                    plen: r.len,
                                    kind: 1,
                                    hop: r.next_hop,
                                };
                            }
                        }
                    }
                    KIND_HOP if slot.plen() > r.len => {}
                    _ => {
                        self.l1[i] = L1::new(KIND_HOP, r.len, r.next_hop);
                    }
                }
            }
        } else {
            let idx = (r.prefix >> (32 - l1_bits as u32)) as usize;
            let blk_len = self.l2_block_len();
            let blk_idx = match self.l1[idx].kind() {
                KIND_PTR => self.l1[idx].value() as usize,
                old_kind => {
                    let seed = if old_kind == KIND_HOP {
                        L2 {
                            plen: self.l1[idx].plen(),
                            kind: 1,
                            hop: self.l1[idx].value(),
                        }
                    } else {
                        L2::default()
                    };
                    self.l2.push(vec![seed; blk_len]);
                    let bi = self.l2.len() - 1;
                    self.l1[idx] = L1::new(KIND_PTR, 0, bi as u32);
                    bi
                }
            };
            // Slot range within the block covered by this prefix (one
            // slot per address below the first level).
            let within = r.prefix & (u32::MAX >> l1_bits); // low bits
            let lo = within as usize;
            let count = 1usize << (32 - r.len as u32);
            let blk = &mut self.l2[blk_idx];
            for e in &mut blk[lo..lo + count] {
                if e.kind == 0 || e.plen <= r.len {
                    *e = L2 {
                        plen: r.len,
                        kind: 1,
                        hop: r.next_hop,
                    };
                }
            }
        }
    }

    /// Lookup: next hop plus the number of memory accesses (1 or 2).
    pub fn lookup_traced(&self, addr: u32) -> (Option<u32>, u32) {
        let e = self.l1[(addr >> (32 - self.l1_bits as u32)) as usize];
        match e.kind() {
            KIND_EMPTY => (None, 1),
            KIND_HOP => (Some(e.value()), 1),
            _ => {
                let slot = (addr & (u32::MAX >> self.l1_bits)) as usize;
                let l2 = self.l2[e.value() as usize][slot];
                if l2.kind == 1 {
                    (Some(l2.hop), 2)
                } else {
                    (None, 2)
                }
            }
        }
    }

    pub fn lookup(&self, addr: u32) -> Option<u32> {
        self.lookup_traced(addr).0
    }

    /// Number of level-2 blocks allocated (memory footprint metric).
    pub fn l2_blocks(&self) -> usize {
        self.l2.len()
    }

    pub fn route_count(&self) -> usize {
        self.routes
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.l1.len() * 4 + self.l2.len() * self.l2_block_len() * std::mem::size_of::<L2>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patricia::PatriciaTable;

    fn e(prefix: u32, len: u8, hop: u32) -> RouteEntry {
        RouteEntry::new(prefix, len, hop)
    }

    #[test]
    fn short_prefixes_resolve_in_one_access() {
        let t = DirTable::build(&[e(0x0a000000, 8, 1), e(0x0a010000, 16, 2)]);
        assert_eq!(t.lookup_traced(0x0a010203), (Some(2), 1));
        assert_eq!(t.lookup_traced(0x0a020203), (Some(1), 1));
        assert_eq!(t.lookup_traced(0x0b000000), (None, 1));
        assert_eq!(t.l2_blocks(), 0);
    }

    #[test]
    fn long_prefixes_use_second_level() {
        let t = DirTable::build(&[e(0x0a000000, 8, 1), e(0x0a000080, 25, 9)]);
        // 10.0.0.128/25 covers .128-.255 of block 10.0.0.
        assert_eq!(t.lookup_traced(0x0a0000ff), (Some(9), 2));
        assert_eq!(
            t.lookup_traced(0x0a000001),
            (Some(1), 2),
            "short route via L2 seed"
        );
        assert_eq!(t.lookup_traced(0x0a000100), (Some(1), 1));
        assert_eq!(t.l2_blocks(), 1);
    }

    #[test]
    fn host_route_beats_everything() {
        let t = DirTable::build(&[e(0, 0, 1), e(0xc0a80000, 16, 2), e(0xc0a80101, 32, 3)]);
        assert_eq!(t.lookup(0xc0a80101), Some(3));
        assert_eq!(t.lookup(0xc0a80102), Some(2));
        assert_eq!(t.lookup(0x08080808), Some(1));
    }

    #[test]
    fn agrees_with_patricia_on_fixed_corpus() {
        let routes = vec![
            e(0, 0, 100),
            e(0x0a000000, 8, 1),
            e(0x0a010000, 16, 2),
            e(0x0a010200, 24, 3),
            e(0x0a010280, 25, 4),
            e(0x0a0102ff, 32, 5),
            e(0xac100000, 12, 6),
            e(0xc0a80000, 16, 7),
        ];
        let d = DirTable::build(&routes);
        let mut p = PatriciaTable::new();
        for r in &routes {
            p.insert(*r);
        }
        for addr in [
            0x0a0102ffu32,
            0x0a010281,
            0x0a010201,
            0x0a010301,
            0x0a020000,
            0xac1fffff,
            0xac200000,
            0xc0a80001,
            0x7f000001,
        ] {
            assert_eq!(d.lookup(addr), p.lookup(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn small_l1_matches_canonical_semantics() {
        let routes = vec![
            e(0, 0, 9),
            e(0xc0a80000, 16, 2),
            e(0xc0a80180, 25, 3),
            e(0xc0a80101, 32, 4),
        ];
        let big = DirTable::build(&routes);
        let small = DirTable::with_bits(&routes, 20);
        for addr in [0xc0a80101u32, 0xc0a80185, 0xc0a80001, 0x01020304] {
            assert_eq!(big.lookup(addr), small.lookup(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn later_duplicate_wins() {
        let t = DirTable::build(&[e(0x0a000000, 8, 1), e(0x0a000000, 8, 2)]);
        assert_eq!(t.lookup(0x0a000001), Some(2));
    }

    #[test]
    fn memory_accounting() {
        let t = DirTable::with_bits(&[e(0x0a000080, 25, 9)], 20);
        assert!(t.memory_bytes() > (1 << 20) * 4);
        assert_eq!(t.l2_blocks(), 1);
    }
}
