//! A path-compressed binary trie (Patricia tree) for longest-prefix-match
//! route lookup.
//!
//! "Traditional implementations of routing tables use a version of
//! Patricia trees \[15\] with modifications for longest prefix matching"
//! (§2.1). This is that structure: internal nodes test one bit position
//! (skipping runs of common bits), and every node may carry a route whose
//! prefix ends there. Lookup walks at most 32 bit tests and remembers the
//! deepest matching route.

/// A route entry: `addr/len -> next_hop`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RouteEntry {
    pub prefix: u32,
    pub len: u8,
    pub next_hop: u32,
}

impl RouteEntry {
    pub fn new(prefix: u32, len: u8, next_hop: u32) -> RouteEntry {
        assert!(len <= 32);
        RouteEntry {
            prefix: mask(prefix, len),
            len,
            next_hop,
        }
    }

    /// True if `addr` falls inside this prefix.
    #[inline]
    pub fn matches(&self, addr: u32) -> bool {
        mask(addr, self.len) == self.prefix
    }
}

/// Longest-prefix match by linear scan over a plain route slice: the
/// executable *specification* of LPM that every engine in this crate
/// (and the fabric-level static verifier in raw-verify) is measured
/// against. Ties between entries of equal length and equal prefix
/// resolve to the first entry, matching the table builders' semantics.
pub fn reference_lpm(routes: &[RouteEntry], addr: u32) -> Option<u32> {
    let mut best: Option<&RouteEntry> = None;
    for r in routes {
        if r.matches(addr) && best.is_none_or(|b| r.len > b.len) {
            best = Some(r);
        }
    }
    best.map(|r| r.next_hop)
}

/// Zero out host bits beyond `len`.
#[inline]
pub fn mask(addr: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        addr & (u32::MAX << (32 - len as u32))
    }
}

#[inline]
fn bit(addr: u32, pos: u8) -> bool {
    debug_assert!(pos < 32);
    (addr >> (31 - pos)) & 1 == 1
}

#[derive(Clone, Debug)]
struct Node {
    /// The prefix this node represents (its first `plen` bits).
    prefix: u32,
    plen: u8,
    /// Route terminating exactly here, if any.
    route: Option<u32>,
    /// Children keyed by the bit at position `plen`.
    children: [Option<Box<Node>>; 2],
}

impl Node {
    fn new(prefix: u32, plen: u8) -> Node {
        Node {
            prefix: mask(prefix, plen),
            plen,
            route: None,
            children: [None, None],
        }
    }
}

/// Longest-prefix-match routing table as a Patricia trie.
#[derive(Clone, Debug)]
pub struct PatriciaTable {
    root: Node,
    len: usize,
}

impl Default for PatriciaTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Length of the common prefix of `a` and `b`, capped at `max`.
fn common_prefix_len(a: u32, b: u32, max: u8) -> u8 {
    (((a ^ b).leading_zeros() as u8).min(max)).min(32)
}

impl PatriciaTable {
    pub fn new() -> PatriciaTable {
        PatriciaTable {
            root: Node::new(0, 0),
            len: 0,
        }
    }

    /// Number of routes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert or replace a route. Returns the previous next hop if the
    /// exact prefix was already present.
    pub fn insert(&mut self, entry: RouteEntry) -> Option<u32> {
        let RouteEntry {
            prefix,
            len,
            next_hop,
        } = entry;
        let mut node: &mut Node = &mut self.root;
        loop {
            debug_assert!(
                len >= node.plen || common_prefix_len(prefix, node.prefix, len) >= node.plen
            );
            if node.plen == len && node.prefix == mask(prefix, len) {
                let old = node.route.replace(next_hop);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }
            let b = bit(prefix, node.plen) as usize;
            match &mut node.children[b] {
                slot @ None => {
                    let mut leaf = Node::new(prefix, len);
                    leaf.route = Some(next_hop);
                    *slot = Some(Box::new(leaf));
                    self.len += 1;
                    return None;
                }
                Some(child) => {
                    let cpl = common_prefix_len(prefix, child.prefix, len.min(child.plen));
                    if cpl >= child.plen {
                        // Descend: the child's prefix covers ours so far.
                        node = node.children[b].as_mut().unwrap();
                        continue;
                    }
                    // Split the edge at cpl: new internal node.
                    let old_child = node.children[b].take().unwrap();
                    let mut split = Node::new(prefix, cpl);
                    let ob = bit(old_child.prefix, cpl) as usize;
                    split.children[ob] = Some(old_child);
                    if cpl == len {
                        // Our prefix ends at the split point.
                        split.route = Some(next_hop);
                        self.len += 1;
                        node.children[b] = Some(Box::new(split));
                        return None;
                    }
                    let nb = bit(prefix, cpl) as usize;
                    debug_assert_ne!(nb, ob, "split bit must differ");
                    let mut leaf = Node::new(prefix, len);
                    leaf.route = Some(next_hop);
                    split.children[nb] = Some(Box::new(leaf));
                    node.children[b] = Some(Box::new(split));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// Longest-prefix-match lookup: the next hop of the most specific
    /// route covering `addr`, and the number of trie nodes visited
    /// (the Lookup Processor's memory-access count).
    pub fn lookup_traced(&self, addr: u32) -> (Option<u32>, u32) {
        let mut best = None;
        let mut node = &self.root;
        let mut visited = 0u32;
        loop {
            visited += 1;
            if mask(addr, node.plen) != node.prefix {
                break;
            }
            if let Some(h) = node.route {
                best = Some(h);
            }
            if node.plen >= 32 {
                break;
            }
            match &node.children[bit(addr, node.plen) as usize] {
                Some(c) => node = c,
                None => break,
            }
        }
        (best, visited)
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        self.lookup_traced(addr).0
    }

    /// Remove a route by exact prefix; returns its next hop.
    /// (Structural simplification of emptied nodes is skipped — lookups
    /// remain correct and insertion reuses the nodes.)
    pub fn remove(&mut self, prefix: u32, len: u8) -> Option<u32> {
        let prefix = mask(prefix, len);
        let mut node: &mut Node = &mut self.root;
        loop {
            if node.plen == len && node.prefix == prefix {
                let old = node.route.take();
                if old.is_some() {
                    self.len -= 1;
                }
                return old;
            }
            if node.plen >= len {
                return None;
            }
            let b = bit(prefix, node.plen) as usize;
            match &mut node.children[b] {
                Some(c) if common_prefix_len(prefix, c.prefix, len.min(c.plen)) >= c.plen => {
                    node = node.children[b].as_mut().unwrap();
                }
                _ => return None,
            }
        }
    }

    /// Iterate all stored routes (order unspecified but deterministic).
    pub fn iter(&self) -> Vec<RouteEntry> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![&self.root];
        while let Some(n) = stack.pop() {
            if let Some(h) = n.route {
                out.push(RouteEntry {
                    prefix: n.prefix,
                    len: n.plen,
                    next_hop: h,
                });
            }
            for c in n.children.iter().flatten() {
                stack.push(c);
            }
        }
        out
    }

    /// Maximum node depth (bounds worst-case lookup cost).
    pub fn max_depth(&self) -> u32 {
        fn depth(n: &Node) -> u32 {
            1 + n
                .children
                .iter()
                .flatten()
                .map(|c| depth(c))
                .max()
                .unwrap_or(0)
        }
        depth(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(p: &str, len: u8, hop: u32) -> RouteEntry {
        let addr = p
            .split('.')
            .map(|o| o.parse::<u32>().unwrap())
            .fold(0u32, |a, o| (a << 8) | o);
        RouteEntry::new(addr, len, hop)
    }

    #[test]
    fn reference_lpm_agrees_with_the_patricia_table() {
        let routes = [
            e("10.0.0.0", 8, 1),
            e("10.1.0.0", 16, 2),
            e("10.1.2.0", 24, 3),
            e("0.0.0.0", 0, 9),
        ];
        let mut t = PatriciaTable::new();
        for r in &routes {
            t.insert(*r);
        }
        // A deterministic spray of probe addresses, including every
        // prefix boundary of the table above.
        let mut probes = vec![0x0a010203, 0x0a010303, 0x0a020303, 0x0b000001, 0, u32::MAX];
        let mut x = 0x12345678u32;
        for _ in 0..4096 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            probes.push(x);
        }
        for a in probes {
            assert_eq!(reference_lpm(&routes, a), t.lookup(a), "addr {a:#010x}");
        }
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PatriciaTable::new();
        t.insert(e("10.0.0.0", 8, 1));
        t.insert(e("10.1.0.0", 16, 2));
        t.insert(e("10.1.2.0", 24, 3));
        assert_eq!(t.lookup(0x0a010203), Some(3)); // 10.1.2.3
        assert_eq!(t.lookup(0x0a010303), Some(2)); // 10.1.3.3
        assert_eq!(t.lookup(0x0a020303), Some(1)); // 10.2.3.3
        assert_eq!(t.lookup(0x0b000001), None); // 11.0.0.1
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn default_route() {
        let mut t = PatriciaTable::new();
        t.insert(RouteEntry::new(0, 0, 9));
        t.insert(e("192.168.0.0", 16, 4));
        assert_eq!(t.lookup(0x01020304), Some(9));
        assert_eq!(t.lookup(0xc0a80505), Some(4));
    }

    #[test]
    fn replace_returns_old_hop() {
        let mut t = PatriciaTable::new();
        assert_eq!(t.insert(e("10.0.0.0", 8, 1)), None);
        assert_eq!(t.insert(e("10.0.0.0", 8, 7)), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(0x0a000001), Some(7));
    }

    #[test]
    fn host_routes() {
        let mut t = PatriciaTable::new();
        t.insert(e("10.0.0.1", 32, 1));
        t.insert(e("10.0.0.2", 32, 2));
        assert_eq!(t.lookup(0x0a000001), Some(1));
        assert_eq!(t.lookup(0x0a000002), Some(2));
        assert_eq!(t.lookup(0x0a000003), None);
    }

    #[test]
    fn remove_routes() {
        let mut t = PatriciaTable::new();
        t.insert(e("10.0.0.0", 8, 1));
        t.insert(e("10.1.0.0", 16, 2));
        assert_eq!(t.remove(0x0a010000, 16), Some(2));
        assert_eq!(t.lookup(0x0a010203), Some(1), "falls back to /8");
        assert_eq!(t.remove(0x0a010000, 16), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sibling_prefixes_split_correctly() {
        let mut t = PatriciaTable::new();
        // 10.0.0.0/8 and 11.0.0.0/8 share 7 leading bits.
        t.insert(e("10.0.0.0", 8, 1));
        t.insert(e("11.0.0.0", 8, 2));
        assert_eq!(t.lookup(0x0a123456), Some(1));
        assert_eq!(t.lookup(0x0b123456), Some(2));
    }

    #[test]
    fn iter_returns_everything() {
        let mut t = PatriciaTable::new();
        let routes = [
            e("10.0.0.0", 8, 1),
            e("10.1.0.0", 16, 2),
            e("172.16.0.0", 12, 3),
            e("0.0.0.0", 0, 4),
        ];
        for r in routes {
            t.insert(r);
        }
        let mut got = t.iter();
        got.sort_by_key(|r| (r.len, r.prefix));
        assert_eq!(got.len(), 4);
        assert!(got.iter().any(|r| r.len == 12 && r.next_hop == 3));
    }

    #[test]
    fn lookup_traced_counts_accesses() {
        let mut t = PatriciaTable::new();
        t.insert(e("10.0.0.0", 8, 1));
        t.insert(e("10.1.0.0", 16, 2));
        let (hop, visited) = t.lookup_traced(0x0a010203);
        assert_eq!(hop, Some(2));
        assert!((2..=33).contains(&visited), "visited {visited}");
        assert!(t.max_depth() <= 34);
    }
}
