//! # raw-lookup — IP route lookup for the Raw router
//!
//! The Lookup Processor of each port (§4.2) resolves a packet's output
//! port by longest-prefix match. This crate provides:
//!
//! * [`patricia`] — the Patricia-trie table the paper names as the
//!   traditional structure (§2.1);
//! * [`dir24`] — a two-level direct-index "small forwarding table" in the
//!   spirit of the Degermark et al. work cited for future core-router
//!   lookups (§8.2), with a constant two-access worst case;
//! * [`table`] — synthetic routing-table/traffic generation and the
//!   cycle-cost model that converts memory accesses into Lookup
//!   Processor cycles.

pub mod dir24;
pub mod patricia;
pub mod table;

pub use dir24::{Dir24_8, DirTable};
pub use patricia::{mask, reference_lpm, PatriciaTable, RouteEntry};
pub use table::{
    decode_hop, encode_multicast, synth_addresses, synth_table, Engine, ForwardingTable, Hop,
    LookupCostModel, MULTICAST_FLAG,
};
