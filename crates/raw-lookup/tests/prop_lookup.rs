//! Property tests: the two lookup engines implement the same
//! longest-prefix-match function, and both agree with a naive
//! linear-scan oracle.

use proptest::prelude::*;
use raw_lookup::*;

fn oracle(routes: &[RouteEntry], addr: u32) -> Option<u32> {
    // Linear scan for the longest matching prefix; later exact
    // duplicates replace earlier ones (insert semantics).
    let mut dedup: Vec<RouteEntry> = Vec::new();
    for r in routes {
        match dedup
            .iter_mut()
            .find(|c| c.len == r.len && c.prefix == r.prefix)
        {
            Some(c) => c.next_hop = r.next_hop,
            None => dedup.push(*r),
        }
    }
    dedup
        .iter()
        .filter(|r| r.matches(addr))
        .max_by_key(|r| r.len)
        .map(|r| r.next_hop)
}

fn arb_route() -> impl Strategy<Value = RouteEntry> {
    (any::<u32>(), 0u8..=32, 0u32..8).prop_map(|(p, l, h)| RouteEntry::new(p, l, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn patricia_matches_oracle(
        routes in proptest::collection::vec(arb_route(), 0..60),
        addrs in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut t = PatriciaTable::new();
        for r in &routes {
            t.insert(*r);
        }
        for a in addrs {
            prop_assert_eq!(t.lookup(a), oracle(&routes, a), "addr {:#x}", a);
        }
    }

    #[test]
    fn dir24_matches_oracle(
        routes in proptest::collection::vec(arb_route(), 0..60),
        addrs in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let d = DirTable::with_bits(&routes, 20);
        for a in addrs {
            prop_assert_eq!(d.lookup(a), oracle(&routes, a), "addr {:#x}", a);
        }
    }

    #[test]
    fn insert_then_remove_is_identity(
        routes in proptest::collection::vec(arb_route(), 1..40),
        extra in arb_route(),
        addrs in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        // Skip if `extra` collides with an existing prefix (removal would
        // then expose the pre-existing route, which is correct but not
        // the identity being tested).
        prop_assume!(!routes.iter().any(|r| r.len == extra.len && r.prefix == extra.prefix));
        let mut t = PatriciaTable::new();
        for r in &routes {
            t.insert(*r);
        }
        let before: Vec<_> = addrs.iter().map(|&a| t.lookup(a)).collect();
        t.insert(extra);
        prop_assert_eq!(t.remove(extra.prefix, extra.len), Some(extra.next_hop));
        let after: Vec<_> = addrs.iter().map(|&a| t.lookup(a)).collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn patricia_visit_count_bounded(
        routes in proptest::collection::vec(arb_route(), 0..80),
        addr in any::<u32>(),
    ) {
        let mut t = PatriciaTable::new();
        for r in &routes {
            t.insert(*r);
        }
        let (_, visited) = t.lookup_traced(addr);
        prop_assert!(visited <= 34, "visited {} nodes", visited);
    }
}
