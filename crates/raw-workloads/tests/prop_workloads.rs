//! Property tests on the traffic generators: determinism, validity of
//! every generated packet, pattern invariants, and release monotonicity.

use proptest::prelude::*;
use raw_workloads::*;

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (0u8..4).prop_map(|s| Pattern::Permutation { shift: s }),
        Just(Pattern::Uniform),
        (0u8..4).prop_map(|d| Pattern::Hotspot { dst: d }),
        (1u32..16).prop_map(|b| Pattern::Bursty { burst: b }),
    ]
}

fn arb_arrivals() -> impl Strategy<Value = Arrivals> {
    prop_oneof![
        Just(Arrivals::Saturation),
        (10u64..500, 1u32..999).prop_map(|(s, p)| Arrivals::Bernoulli {
            slot_cycles: s,
            p_mille: p
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_generated_packet_is_valid(
        pattern in arb_pattern(),
        arrivals in arb_arrivals(),
        bytes in 24usize..1500,
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let w = Workload {
            pattern,
            arrivals,
            packet_bytes: bytes,
            packets_per_port: n,
            seed,
            ttl: 64,
        };
        let sched = generate(&w);
        prop_assert_eq!(sched.len(), 4 * n);
        for s in &sched {
            prop_assert!(s.port < 4);
            prop_assert!(s.packet.header.checksum_ok());
            prop_assert_eq!(s.packet.total_bytes(), bytes);
            // Destination inside one of the four experiment prefixes.
            let dst_port = (s.packet.header.dst >> 16) & 0xff;
            prop_assert!(dst_port < 4);
            prop_assert_eq!(s.packet.header.dst & 0xff00_0000, 0x0a00_0000);
        }
        // Deterministic regeneration.
        let again = generate(&w);
        for (a, b) in sched.iter().zip(&again) {
            prop_assert_eq!(&a.packet, &b.packet);
            prop_assert_eq!(a.release, b.release);
        }
    }

    #[test]
    fn releases_are_monotone_per_port(
        bytes in 24usize..600,
        n in 2usize..30,
        seed in any::<u64>(),
        slot in 10u64..300,
        p in 1u32..999,
    ) {
        let w = Workload {
            arrivals: Arrivals::Bernoulli { slot_cycles: slot, p_mille: p },
            ..Workload::average(bytes, n, seed)
        };
        let sched = generate(&w);
        for port in 0..4 {
            let rel: Vec<u64> = sched
                .iter()
                .filter(|s| s.port == port)
                .map(|s| s.release)
                .collect();
            prop_assert_eq!(rel.len(), n);
            for pair in rel.windows(2) {
                prop_assert!(pair[0] < pair[1], "releases must strictly increase");
            }
        }
    }

    #[test]
    fn expected_counts_are_conserved(
        pattern in arb_pattern(),
        n in 1usize..50,
        seed in any::<u64>(),
    ) {
        let w = Workload {
            pattern,
            ..Workload::average(64, n, seed)
        };
        let per = expected_per_output(&generate(&w));
        prop_assert_eq!(per.iter().sum::<usize>(), 4 * n);
        if let Pattern::Hotspot { dst } = pattern {
            prop_assert_eq!(per[dst as usize], 4 * n);
        }
        if let Pattern::Permutation { .. } = pattern {
            // A permutation spreads each port's n packets to one output.
            prop_assert!(per.iter().all(|&c| c % n == 0));
        }
    }

    #[test]
    fn flow_ids_are_sequential(
        n in 1usize..60,
        seed in any::<u64>(),
    ) {
        let sched = generate(&Workload::average(128, n, seed));
        for port in 0..4 {
            let ids: Vec<u16> = sched
                .iter()
                .filter(|s| s.port == port)
                .map(|s| s.packet.header.id)
                .collect();
            prop_assert_eq!(ids, (0..n as u16).collect::<Vec<_>>());
        }
    }
}
