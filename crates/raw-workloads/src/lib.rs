//! # raw-workloads — deterministic traffic generation
//!
//! The paper's evaluation drives the router with uniform-size packets at
//! saturation: conflict-free permutations for *peak* throughput and
//! uniform-random destinations ("complete fairness of the traffic") for
//! *average* throughput. This crate generates those patterns plus the
//! adversarial and bursty variants the extension experiments use, all
//! seeded and reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raw_net::Packet;

/// Number of router ports the generators target.
pub const NPORTS: usize = 4;

/// Destination-selection pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// `dst = (src + shift) % N` — conflict-free, the peak-rate pattern
    /// (Figure 5-1 is `shift = 2`).
    Permutation { shift: u8 },
    /// Independently uniform destinations — the paper's average-rate
    /// traffic.
    Uniform,
    /// Every source targets one port — the §5.4 fairness adversary.
    Hotspot { dst: u8 },
    /// Uniform, but each source switches destination only every `burst`
    /// packets (bursty flows).
    Bursty { burst: u32 },
}

/// Packet arrival process per input port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arrivals {
    /// Back-to-back: a packet is always ready (peak-rate measurement).
    Saturation,
    /// Bernoulli packet arrivals: each `slot_cycles` window starts a new
    /// packet with probability `p` (per mille).
    Bernoulli { slot_cycles: u64, p_mille: u32 },
}

/// A workload: the full description of what each line card injects.
#[derive(Clone, Debug)]
pub struct Workload {
    pub pattern: Pattern,
    pub arrivals: Arrivals,
    /// Total packet size in bytes (header included). The paper sweeps
    /// 64..=1024.
    pub packet_bytes: usize,
    pub packets_per_port: usize,
    pub seed: u64,
    pub ttl: u8,
}

impl Workload {
    /// The paper's peak-rate workload at a given packet size.
    pub fn peak(packet_bytes: usize, packets_per_port: usize) -> Workload {
        Workload {
            pattern: Pattern::Permutation { shift: 2 },
            arrivals: Arrivals::Saturation,
            packet_bytes,
            packets_per_port,
            seed: 1,
            ttl: 64,
        }
    }

    /// The paper's average-rate workload ("complete fairness").
    pub fn average(packet_bytes: usize, packets_per_port: usize, seed: u64) -> Workload {
        Workload {
            pattern: Pattern::Uniform,
            arrivals: Arrivals::Saturation,
            packet_bytes,
            packets_per_port,
            seed,
            ttl: 64,
        }
    }
}

/// One scheduled packet: input port, release cycle, and the packet. The
/// destination address encodes the output port for the standard
/// experiment routing table ([`port_table_routes`]).
#[derive(Clone, Debug)]
pub struct ScheduledPacket {
    pub port: usize,
    pub release: u64,
    pub packet: Packet,
}

/// Destination address inside output port `p`'s experiment prefix
/// (`10.<p>.0.0/16`).
pub fn addr_for_port(p: u8) -> u32 {
    0x0a00_0001 | ((p as u32) << 16)
}

/// Source address for input port `p` (outside any experiment prefix's
/// low octets; purely cosmetic).
pub fn src_addr(p: u8) -> u32 {
    0x0a0a_0000 + p as u32
}

/// The routes of the standard experiment table: `10.<p>.0.0/16 -> p`.
pub fn port_table_routes() -> Vec<raw_net_compat::RouteSpec> {
    (0..NPORTS as u8)
        .map(|p| raw_net_compat::RouteSpec {
            prefix: 0x0a00_0000 | ((p as u32) << 16),
            len: 16,
            next_hop: p as u32,
        })
        .collect()
}

/// A tiny mirror of `raw_lookup::RouteEntry`'s fields, so this crate does
/// not depend on the lookup crate (the router harness converts).
pub mod raw_net_compat {
    #[derive(Clone, Copy, Debug)]
    pub struct RouteSpec {
        pub prefix: u32,
        pub len: u8,
        pub next_hop: u32,
    }
}

/// Generate the full packet schedule for a workload.
pub fn generate(w: &Workload) -> Vec<ScheduledPacket> {
    let mut rng = StdRng::seed_from_u64(w.seed);
    let mut out = Vec::with_capacity(w.packets_per_port * NPORTS);
    let mut burst_state = [(0u8, 0u32); NPORTS]; // (dst, remaining)
    #[allow(clippy::needless_range_loop)]
    for src in 0..NPORTS {
        let mut release = 0u64;
        for k in 0..w.packets_per_port {
            let dst = match w.pattern {
                Pattern::Permutation { shift } => ((src as u8) + shift) % NPORTS as u8,
                Pattern::Uniform => rng.gen_range(0..NPORTS as u8),
                Pattern::Hotspot { dst } => dst,
                Pattern::Bursty { burst } => {
                    let (d, left) = &mut burst_state[src];
                    if *left == 0 {
                        *d = rng.gen_range(0..NPORTS as u8);
                        *left = burst;
                    }
                    *left -= 1;
                    *d
                }
            };
            release = match w.arrivals {
                Arrivals::Saturation => 0,
                Arrivals::Bernoulli {
                    slot_cycles,
                    p_mille,
                } => {
                    // Advance slots until one fires.
                    let mut r = release;
                    loop {
                        r += slot_cycles;
                        if rng.gen_range(0..1000) < p_mille {
                            break;
                        }
                    }
                    r
                }
            };
            let mut p = Packet::synthetic(
                src_addr(src as u8),
                addr_for_port(dst),
                w.packet_bytes,
                w.ttl,
                (src as u32) << 16 | k as u32,
            );
            // Stamp a flow sequence number in the IP id for ordering
            // checks downstream.
            p.header.id = (k & 0xffff) as u16;
            p.header.checksum = p.header.compute_checksum();
            out.push(ScheduledPacket {
                port: src,
                release,
                packet: p,
            });
        }
    }
    out
}

/// Per-output expected packet counts for a schedule (delivery checking).
pub fn expected_per_output(sched: &[ScheduledPacket]) -> [usize; NPORTS] {
    let mut out = [0usize; NPORTS];
    for s in sched {
        let dst = ((s.packet.header.dst >> 16) & 0x3) as usize;
        out[dst] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let w = Workload::average(256, 50, 7);
        let a = generate(&w);
        let b = generate(&w);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packet, y.packet);
            assert_eq!(x.release, y.release);
        }
    }

    #[test]
    fn permutation_is_conflict_free() {
        let w = Workload::peak(64, 10);
        let sched = generate(&w);
        assert_eq!(sched.len(), 40);
        for s in &sched {
            let src = s.port as u8;
            let dst = ((s.packet.header.dst >> 16) & 0xff) as u8;
            assert_eq!(dst, (src + 2) % 4);
        }
        let per = expected_per_output(&sched);
        assert_eq!(per, [10, 10, 10, 10]);
    }

    #[test]
    fn uniform_covers_all_outputs() {
        let w = Workload::average(64, 400, 3);
        let per = expected_per_output(&generate(&w));
        for (i, &n) in per.iter().enumerate() {
            assert!(
                (300..=500).contains(&n),
                "output {i} got {n} of 1600 — not uniform"
            );
        }
    }

    #[test]
    fn hotspot_targets_one_output() {
        let w = Workload {
            pattern: Pattern::Hotspot { dst: 1 },
            ..Workload::peak(64, 5)
        };
        let per = expected_per_output(&generate(&w));
        assert_eq!(per, [0, 20, 0, 0]);
    }

    #[test]
    fn bursty_switches_destinations_in_runs() {
        let w = Workload {
            pattern: Pattern::Bursty { burst: 8 },
            ..Workload::average(64, 64, 9)
        };
        let sched = generate(&w);
        // Per source, destinations come in runs of 8.
        for src in 0..4 {
            let dsts: Vec<u8> = sched
                .iter()
                .filter(|s| s.port == src)
                .map(|s| ((s.packet.header.dst >> 16) & 0xff) as u8)
                .collect();
            for chunk in dsts.chunks(8) {
                assert!(chunk.iter().all(|&d| d == chunk[0]));
            }
        }
    }

    #[test]
    fn bernoulli_spaces_releases() {
        let w = Workload {
            arrivals: Arrivals::Bernoulli {
                slot_cycles: 100,
                p_mille: 300,
            },
            ..Workload::average(64, 40, 5)
        };
        let sched = generate(&w);
        for src in 0..4 {
            let rel: Vec<u64> = sched
                .iter()
                .filter(|s| s.port == src)
                .map(|s| s.release)
                .collect();
            // Strictly increasing in multiples of the slot.
            for w2 in rel.windows(2) {
                assert!(w2[1] > w2[0]);
                assert_eq!((w2[1] - w2[0]) % 100, 0);
            }
        }
    }

    #[test]
    fn packets_have_valid_checksums_and_ids() {
        let sched = generate(&Workload::average(128, 20, 2));
        for s in &sched {
            assert!(s.packet.header.checksum_ok());
        }
        let ids: Vec<u16> = sched
            .iter()
            .filter(|s| s.port == 0)
            .map(|s| s.packet.header.id)
            .collect();
        assert_eq!(ids, (0..20).collect::<Vec<u16>>());
    }
}
