//! # raw-workloads — deterministic traffic generation
//!
//! The paper's evaluation drives the router with uniform-size packets at
//! saturation: conflict-free permutations for *peak* throughput and
//! uniform-random destinations ("complete fairness of the traffic") for
//! *average* throughput. This crate generates those patterns plus the
//! adversarial and bursty variants the extension experiments use, all
//! seeded and reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raw_net::Packet;

/// Number of router ports the generators target.
pub const NPORTS: usize = 4;

/// Destination-selection pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// `dst = (src + shift) % N` — conflict-free, the peak-rate pattern
    /// (Figure 5-1 is `shift = 2`).
    Permutation { shift: u8 },
    /// Independently uniform destinations — the paper's average-rate
    /// traffic.
    Uniform,
    /// Every source targets one port — the §5.4 fairness adversary.
    Hotspot { dst: u8 },
    /// Uniform, but each source switches destination only every `burst`
    /// packets (bursty flows).
    Bursty { burst: u32 },
    /// Internet-mix sizes: uniform destinations, but packet sizes drawn
    /// 7:4:1 from {64, 576, 1500} bytes (the classic IMIX), overriding
    /// [`Workload::packet_bytes`]. 1500-byte packets exceed the 256-word
    /// cut-through quantum, so router runs need store-and-forward.
    Imix,
    /// Zipf-distributed destinations: port `p` is drawn with probability
    /// proportional to `1/(p+1)^s`, `s = s_milli / 1000`. `s_milli = 0`
    /// is uniform; larger values concentrate traffic on port 0 — a
    /// tunable hotspot between [`Pattern::Uniform`] and
    /// [`Pattern::Hotspot`].
    ZipfHotspot { s_milli: u32 },
    /// Uniform destinations excluding the source's own external port —
    /// the fabric-uniform traffic of multi-router experiments, where
    /// self-directed traffic never crosses the middle stage and would
    /// flatter the fabric's numbers.
    FabricUniform,
    /// Every source targets the `group_size` consecutive destinations
    /// `[group*group_size, (group+1)*group_size)` — with `group_size`
    /// equal to the ports per egress router, this oversubscribes one
    /// egress-stage router of a fabric while its siblings idle (the
    /// cross-stage analogue of [`Pattern::Hotspot`]).
    CrossStageHotspot { group: u8, group_size: u8 },
    /// Slot-rotating (a)symmetric permutation:
    /// `dst = ((1+skew)*src + shift + k/period) % N` for source `src`'s
    /// `k`-th packet. With `skew = 0` this is [`Pattern::Permutation`]
    /// rotated one position every `period` packets — still conflict-free
    /// within each phase, but the destination map never settles, which
    /// punishes arbiters that converge on a fixed matching (iSLIP's
    /// desynchronized pointers must re-slip each phase). With
    /// `1 + skew ≡ 0 (mod N)` (`skew = 3` at 4 ports) the source term
    /// vanishes and *all* sources target the same rotating output — an
    /// aligned transient hotspot. Note that a FIFO router under
    /// backpressure *desynchronizes* the sources' packet indices, which
    /// spreads the phases back out; the sustained head-of-line adversary
    /// of the scheduler head-to-head is [`Pattern::HotInterleave`].
    RotatingPermutation { shift: u8, period: u32, skew: u8 },
    /// The head-of-line-blocking adversary of the scheduler
    /// head-to-head: source `src`'s `k`-th packet targets the shared
    /// `hot` output when `k % m < h`, and otherwise a distinct non-hot
    /// output that rotates over the remaining `N-1` outputs every
    /// `period` packets (`period = 0` freezes the rotation). With
    /// `h/m` above `1/N` the hot output is oversubscribed, so every
    /// FIFO head eventually parks on a hot packet and the distinct
    /// packets trapped behind it cannot bid — single-head token
    /// arbitration degrades toward the hot wire's drain rate. VOQ-aware
    /// matchers keep the distinct outputs busy from backlogged queues,
    /// and the rotation forces converged pointers (iSLIP) and warm
    /// crosspoints (CQ) to re-adapt each phase.
    HotInterleave { hot: u8, h: u8, m: u8, period: u32 },
}

/// Packet arrival process per input port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arrivals {
    /// Back-to-back: a packet is always ready (peak-rate measurement).
    Saturation,
    /// Bernoulli packet arrivals: each `slot_cycles` window starts a new
    /// packet with probability `p` (per mille).
    Bernoulli { slot_cycles: u64, p_mille: u32 },
}

/// A workload: the full description of what each line card injects.
#[derive(Clone, Debug)]
pub struct Workload {
    pub pattern: Pattern,
    pub arrivals: Arrivals,
    /// Total packet size in bytes (header included). The paper sweeps
    /// 64..=1024.
    pub packet_bytes: usize,
    pub packets_per_port: usize,
    pub seed: u64,
    pub ttl: u8,
}

impl Workload {
    /// The paper's peak-rate workload at a given packet size.
    pub fn peak(packet_bytes: usize, packets_per_port: usize) -> Workload {
        Workload {
            pattern: Pattern::Permutation { shift: 2 },
            arrivals: Arrivals::Saturation,
            packet_bytes,
            packets_per_port,
            seed: 1,
            ttl: 64,
        }
    }

    /// The paper's average-rate workload ("complete fairness").
    pub fn average(packet_bytes: usize, packets_per_port: usize, seed: u64) -> Workload {
        Workload {
            pattern: Pattern::Uniform,
            arrivals: Arrivals::Saturation,
            packet_bytes,
            packets_per_port,
            seed,
            ttl: 64,
        }
    }
}

/// One scheduled packet: input port, release cycle, and the packet. The
/// destination address encodes the output port for the standard
/// experiment routing table ([`port_table_routes`]).
#[derive(Clone, Debug)]
pub struct ScheduledPacket {
    pub port: usize,
    pub release: u64,
    pub packet: Packet,
}

/// Destination address inside output port `p`'s experiment prefix
/// (`10.<p>.0.0/16`).
pub fn addr_for_port(p: u8) -> u32 {
    0x0a00_0001 | ((p as u32) << 16)
}

/// Source address for input port `p` (outside any experiment prefix's
/// low octets; purely cosmetic).
pub fn src_addr(p: u8) -> u32 {
    0x0a0a_0000 + p as u32
}

/// The routes of the standard experiment table: `10.<p>.0.0/16 -> p`.
pub fn port_table_routes() -> Vec<raw_net_compat::RouteSpec> {
    port_table_routes_n(NPORTS)
}

/// [`port_table_routes`] for an `nports`-port switch (a fabric's
/// external port space).
pub fn port_table_routes_n(nports: usize) -> Vec<raw_net_compat::RouteSpec> {
    assert!(nports <= 256, "port number must fit the second octet");
    (0..nports as u32)
        .map(|p| raw_net_compat::RouteSpec {
            prefix: 0x0a00_0000 | (p << 16),
            len: 16,
            next_hop: p,
        })
        .collect()
}

/// A tiny mirror of `raw_lookup::RouteEntry`'s fields, so this crate does
/// not depend on the lookup crate (the router harness converts).
pub mod raw_net_compat {
    #[derive(Clone, Copy, Debug)]
    pub struct RouteSpec {
        pub prefix: u32,
        pub len: u8,
        pub next_hop: u32,
    }
}

/// The IMIX size classes and their 7:4:1 draw weights.
pub const IMIX_SIZES: [usize; 3] = [64, 576, 1500];
pub const IMIX_WEIGHTS: [u32; 3] = [7, 4, 1];

/// Cumulative Zipf distribution over `n` output ports for exponent
/// `s = s_milli / 1000`: `cdf[p]` is `P(dst <= p)` scaled to `u32::MAX`.
fn zipf_cdf(s_milli: u32, n: usize) -> Vec<u64> {
    let s = s_milli as f64 / 1000.0;
    let w: Vec<f64> = (0..n).map(|p| 1.0 / ((p + 1) as f64).powf(s)).collect();
    let total: f64 = w.iter().sum();
    let mut cdf = vec![0u64; n];
    let mut acc = 0.0;
    for (p, wp) in w.iter().enumerate() {
        acc += wp;
        cdf[p] = (acc / total * u32::MAX as f64) as u64;
    }
    cdf[n - 1] = u32::MAX as u64;
    cdf
}

/// Generate the full packet schedule for a workload on the standard
/// 4-port router ([`NPORTS`] sources and destinations).
pub fn generate(w: &Workload) -> Vec<ScheduledPacket> {
    generate_n(w, NPORTS)
}

/// Generate the schedule for an `nports`-port switch: `nports` sources,
/// destinations drawn from the same `nports`-wide external port space.
/// Identical to [`generate`] at `nports = 4` (same seed, same draws).
pub fn generate_n(w: &Workload, nports: usize) -> Vec<ScheduledPacket> {
    assert!((2..=256).contains(&nports), "nports {nports} out of range");
    if let Pattern::Hotspot { dst } = w.pattern {
        assert!((dst as usize) < nports, "hotspot dst outside port space");
    }
    if let Pattern::HotInterleave { hot, h, m, .. } = w.pattern {
        assert!((hot as usize) < nports, "hot output outside port space");
        assert!(m > 0 && h <= m, "hot fraction {h}/{m} malformed");
    }
    if let Pattern::CrossStageHotspot { group, group_size } = w.pattern {
        assert!(group_size > 0, "empty hotspot group");
        assert!(
            (group as usize + 1) * group_size as usize <= nports,
            "cross-stage group outside port space"
        );
    }
    let mut rng = StdRng::seed_from_u64(w.seed);
    let mut out = Vec::with_capacity(w.packets_per_port * nports);
    let mut burst_state = vec![(0u8, 0u32); nports]; // (dst, remaining)
    let zipf = match w.pattern {
        Pattern::ZipfHotspot { s_milli } => Some(zipf_cdf(s_milli, nports)),
        _ => None,
    };
    #[allow(clippy::needless_range_loop)]
    for src in 0..nports {
        let mut release = 0u64;
        for k in 0..w.packets_per_port {
            let dst = match w.pattern {
                Pattern::Permutation { shift } => ((src + shift as usize) % nports) as u8,
                Pattern::Uniform | Pattern::Imix => rng.gen_range(0..nports as u8),
                Pattern::Hotspot { dst } => dst,
                Pattern::Bursty { burst } => {
                    let (d, left) = &mut burst_state[src];
                    if *left == 0 {
                        *d = rng.gen_range(0..nports as u8);
                        *left = burst;
                    }
                    *left -= 1;
                    *d
                }
                Pattern::ZipfHotspot { .. } => {
                    let cdf = zipf.as_ref().unwrap();
                    let u = rng.gen::<u32>() as u64;
                    cdf.iter().position(|&c| u <= c).unwrap() as u8
                }
                Pattern::FabricUniform => {
                    // Uniform over the other nports-1 ports.
                    let d = rng.gen_range(0..nports as u8 - 1);
                    if d as usize >= src {
                        d + 1
                    } else {
                        d
                    }
                }
                Pattern::CrossStageHotspot { group, group_size } => {
                    group * group_size + rng.gen_range(0..group_size)
                }
                Pattern::RotatingPermutation {
                    shift,
                    period,
                    skew,
                } => {
                    let phase = k as u64 / u64::from(period.max(1));
                    (((1 + skew as u64) * src as u64 + shift as u64 + phase) % nports as u64) as u8
                }
                Pattern::HotInterleave { hot, h, m, period } => {
                    if (k % m as usize) < h as usize {
                        hot
                    } else {
                        // Walk the nports-1 non-hot outputs, skipping
                        // over `hot` itself.
                        let phase = if period == 0 {
                            0
                        } else {
                            k as u64 / u64::from(period)
                        };
                        let r = ((src as u64 + phase) % (nports as u64 - 1)) as u8;
                        if r >= hot {
                            r + 1
                        } else {
                            r
                        }
                    }
                }
            };
            let bytes = match w.pattern {
                Pattern::Imix => {
                    let total: u32 = IMIX_WEIGHTS.iter().sum();
                    let mut r = rng.gen_range(0..total);
                    let mut size = IMIX_SIZES[0];
                    for (sz, &wt) in IMIX_SIZES.iter().zip(&IMIX_WEIGHTS) {
                        if r < wt {
                            size = *sz;
                            break;
                        }
                        r -= wt;
                    }
                    size
                }
                _ => w.packet_bytes,
            };
            release = match w.arrivals {
                Arrivals::Saturation => 0,
                Arrivals::Bernoulli {
                    slot_cycles,
                    p_mille,
                } => {
                    // Advance slots until one fires.
                    let mut r = release;
                    loop {
                        r += slot_cycles;
                        if rng.gen_range(0..1000) < p_mille {
                            break;
                        }
                    }
                    r
                }
            };
            let mut p = Packet::synthetic(
                src_addr(src as u8),
                addr_for_port(dst),
                bytes,
                w.ttl,
                (src as u32) << 16 | k as u32,
            );
            // Stamp a flow sequence number in the IP id for ordering
            // checks downstream.
            p.header.id = (k & 0xffff) as u16;
            p.header.checksum = p.header.compute_checksum();
            out.push(ScheduledPacket {
                port: src,
                release,
                packet: p,
            });
        }
    }
    out
}

/// Count within-flow order violations in one output's delivered
/// sequence (arrival order). A flow is identified by the packet's
/// source address: [`generate`] stamps each source's packets with an
/// increasing IP `id`, and the router must never reorder a flow — at
/// any single output, every source's ids must arrive strictly
/// increasing. Holds under FIFO and VOQ ingress alike (each output is
/// fed from one FIFO-ordered virtual queue per ingress), and even when
/// fault injection reroutes packets onto the default route. Returns
/// the number of adjacent-in-flow inversions (0 == order preserved).
pub fn flow_order_violations(delivered: &[Packet]) -> usize {
    let mut last: std::collections::HashMap<u32, u16> = std::collections::HashMap::new();
    let mut bad = 0;
    for p in delivered {
        if let Some(prev) = last.insert(p.header.src, p.header.id) {
            if p.header.id <= prev {
                bad += 1;
            }
        }
    }
    bad
}

/// Per-output expected packet counts for a schedule (delivery checking).
pub fn expected_per_output(sched: &[ScheduledPacket]) -> [usize; NPORTS] {
    let v = expected_per_output_n(sched, NPORTS);
    std::array::from_fn(|i| v[i])
}

/// [`expected_per_output`] over an `nports`-wide external port space.
pub fn expected_per_output_n(sched: &[ScheduledPacket], nports: usize) -> Vec<usize> {
    let mut out = vec![0usize; nports];
    for s in sched {
        // The port lives in the second address octet (`10.<p>.0.0/16`);
        // it must name a real output, not be silently masked into range.
        let dst = ((s.packet.header.dst >> 16) & 0xff) as usize;
        assert!(dst < nports, "destination {dst} outside the port space");
        out[dst] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let w = Workload::average(256, 50, 7);
        let a = generate(&w);
        let b = generate(&w);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packet, y.packet);
            assert_eq!(x.release, y.release);
        }
    }

    #[test]
    fn permutation_is_conflict_free() {
        let w = Workload::peak(64, 10);
        let sched = generate(&w);
        assert_eq!(sched.len(), 40);
        for s in &sched {
            let src = s.port as u8;
            let dst = ((s.packet.header.dst >> 16) & 0xff) as u8;
            assert_eq!(dst, (src + 2) % 4);
        }
        let per = expected_per_output(&sched);
        assert_eq!(per, [10, 10, 10, 10]);
    }

    #[test]
    fn rotating_permutation_shapes() {
        // skew = 0: per-phase conflict-free permutation rotating every
        // `period` packets.
        let w = Workload {
            pattern: Pattern::RotatingPermutation {
                shift: 1,
                period: 5,
                skew: 0,
            },
            arrivals: Arrivals::Saturation,
            packet_bytes: 64,
            packets_per_port: 20,
            seed: 9,
            ttl: 64,
        };
        let sched = generate(&w);
        assert_eq!(sched.len(), 80);
        let mut k_per_src = [0u32; 4];
        for s in &sched {
            let src = s.port;
            let k = k_per_src[src];
            k_per_src[src] += 1;
            let dst = ((s.packet.header.dst >> 16) & 0xff) as u8;
            assert_eq!(dst, ((src as u32 + 1 + k / 5) % 4) as u8, "src {src} k {k}");
        }
        // Within any phase the four sources hit four distinct outputs.
        let phase0: Vec<u8> = (0..4)
            .map(|src| {
                let s = sched.iter().find(|s| s.port == src).unwrap();
                ((s.packet.header.dst >> 16) & 0xff) as u8
            })
            .collect();
        let mut sorted = phase0.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "phase 0 not a permutation");

        // skew = 3 at 4 ports: the source term vanishes — every source
        // targets the *same* output, rotating each phase (the
        // head-to-head adversary).
        let adv = Workload {
            pattern: Pattern::RotatingPermutation {
                shift: 0,
                period: 3,
                skew: 3,
            },
            ..w
        };
        let sched = generate(&adv);
        let mut k_per_src = [0u32; 4];
        for s in &sched {
            let k = k_per_src[s.port];
            k_per_src[s.port] += 1;
            let dst = ((s.packet.header.dst >> 16) & 0xff) as u8;
            assert_eq!(dst, ((k / 3) % 4) as u8, "src {} k {k}", s.port);
        }
    }

    #[test]
    fn rotating_permutation_is_deterministic() {
        let w = Workload {
            pattern: Pattern::RotatingPermutation {
                shift: 2,
                period: 7,
                skew: 3,
            },
            arrivals: Arrivals::Saturation,
            packet_bytes: 64,
            packets_per_port: 30,
            seed: 11,
            ttl: 64,
        };
        let a = generate(&w);
        let b = generate(&w);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packet, y.packet);
            assert_eq!(x.release, y.release);
            assert_eq!(x.port, y.port);
        }
        // And at a wider port count the modulus follows nports.
        let s8 = generate_n(&w, 8);
        for s in s8.iter().filter(|s| s.port == 1) {
            let dst = ((s.packet.header.dst >> 16) & 0xff) as u8;
            assert!(dst < 8);
        }
    }

    #[test]
    fn hot_interleave_shapes() {
        // hot 5/8 at hot = 0: of every 8 packets per source, 5 target
        // output 0 and 3 target the source's rotating non-hot output.
        let w = Workload {
            pattern: Pattern::HotInterleave {
                hot: 0,
                h: 5,
                m: 8,
                period: 16,
            },
            arrivals: Arrivals::Saturation,
            packet_bytes: 64,
            packets_per_port: 64,
            seed: 5,
            ttl: 64,
        };
        let sched = generate(&w);
        let mut k_per_src = [0usize; 4];
        for s in &sched {
            let k = k_per_src[s.port];
            k_per_src[s.port] += 1;
            let dst = ((s.packet.header.dst >> 16) & 0xff) as u8;
            if k % 8 < 5 {
                assert_eq!(dst, 0, "src {} k {k}: expected hot", s.port);
            } else {
                assert_ne!(dst, 0, "src {} k {k}: distinct hit hot", s.port);
                let r = ((s.port as u64 + k as u64 / 16) % 3) as u8;
                assert_eq!(dst, r + 1, "src {} k {k}", s.port);
            }
        }
        let per = expected_per_output(&sched);
        assert_eq!(per.iter().sum::<usize>(), 256);
        assert_eq!(per[0], 4 * 40, "hot output gets 5/8 of each source");

        // A nonzero hot output is never targeted by the distinct walk.
        let off = Workload {
            pattern: Pattern::HotInterleave {
                hot: 2,
                h: 1,
                m: 2,
                period: 0,
            },
            ..w
        };
        let mut k_off = [0usize; 4];
        for s in generate(&off) {
            let k = k_off[s.port];
            k_off[s.port] += 1;
            let dst = ((s.packet.header.dst >> 16) & 0xff) as u8;
            assert!(dst < 4);
            if k % 2 == 0 {
                assert_eq!(dst, 2);
            } else {
                assert_ne!(dst, 2, "distinct walk hit the hot output");
            }
        }
    }

    #[test]
    fn hot_interleave_is_deterministic() {
        let w = Workload {
            pattern: Pattern::HotInterleave {
                hot: 0,
                h: 5,
                m: 8,
                period: 16,
            },
            arrivals: Arrivals::Saturation,
            packet_bytes: 64,
            packets_per_port: 30,
            seed: 11,
            ttl: 64,
        };
        let a = generate(&w);
        let b = generate(&w);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packet, y.packet);
            assert_eq!(x.release, y.release);
            assert_eq!(x.port, y.port);
        }
    }

    #[test]
    fn uniform_covers_all_outputs() {
        let w = Workload::average(64, 400, 3);
        let per = expected_per_output(&generate(&w));
        for (i, &n) in per.iter().enumerate() {
            assert!(
                (300..=500).contains(&n),
                "output {i} got {n} of 1600 — not uniform"
            );
        }
    }

    #[test]
    fn hotspot_targets_one_output() {
        let w = Workload {
            pattern: Pattern::Hotspot { dst: 1 },
            ..Workload::peak(64, 5)
        };
        let per = expected_per_output(&generate(&w));
        assert_eq!(per, [0, 20, 0, 0]);
    }

    #[test]
    fn bursty_switches_destinations_in_runs() {
        let w = Workload {
            pattern: Pattern::Bursty { burst: 8 },
            ..Workload::average(64, 64, 9)
        };
        let sched = generate(&w);
        // Per source, destinations come in runs of 8.
        for src in 0..4 {
            let dsts: Vec<u8> = sched
                .iter()
                .filter(|s| s.port == src)
                .map(|s| ((s.packet.header.dst >> 16) & 0xff) as u8)
                .collect();
            for chunk in dsts.chunks(8) {
                assert!(chunk.iter().all(|&d| d == chunk[0]));
            }
        }
    }

    #[test]
    fn bernoulli_spaces_releases() {
        let w = Workload {
            arrivals: Arrivals::Bernoulli {
                slot_cycles: 100,
                p_mille: 300,
            },
            ..Workload::average(64, 40, 5)
        };
        let sched = generate(&w);
        for src in 0..4 {
            let rel: Vec<u64> = sched
                .iter()
                .filter(|s| s.port == src)
                .map(|s| s.release)
                .collect();
            // Strictly increasing in multiples of the slot.
            for w2 in rel.windows(2) {
                assert!(w2[1] > w2[0]);
                assert_eq!((w2[1] - w2[0]) % 100, 0);
            }
        }
    }

    #[test]
    fn imix_is_deterministic_and_mixes_7_4_1() {
        let w = Workload {
            pattern: Pattern::Imix,
            ..Workload::average(64, 600, 11)
        };
        let a = generate(&w);
        let b = generate(&w);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packet, y.packet);
            assert_eq!(x.release, y.release);
        }
        let mut counts = [0usize; 3];
        for s in &a {
            let i = IMIX_SIZES
                .iter()
                .position(|&sz| sz == s.packet.total_bytes())
                .expect("IMIX size class");
            counts[i] += 1;
        }
        let total = a.len() as f64;
        for (i, &wt) in IMIX_WEIGHTS.iter().enumerate() {
            let expect = wt as f64 / 12.0;
            let got = counts[i] as f64 / total;
            assert!(
                (got - expect).abs() < 0.05,
                "size {} drew {got:.3} of packets, expected ~{expect:.3}",
                IMIX_SIZES[i]
            );
        }
        // Destinations stay uniform under the size mix.
        let per = expected_per_output(&a);
        assert!(per.iter().all(|&n| n > 400));
    }

    #[test]
    fn zipf_hotspot_is_deterministic_and_skews_by_s() {
        let gen_per = |s_milli: u32| -> [usize; NPORTS] {
            let w = Workload {
                pattern: Pattern::ZipfHotspot { s_milli },
                ..Workload::average(64, 500, 13)
            };
            let a = generate(&w);
            let b = generate(&w);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.packet, y.packet);
            }
            expected_per_output(&a)
        };
        // s = 0 is uniform.
        let flat = gen_per(0);
        assert!(flat.iter().all(|&n| (400..=600).contains(&n)), "{flat:?}");
        // s = 1 ranks ports 0 > 1 > 2 > 3 with harmonic weights.
        let skew = gen_per(1000);
        assert!(
            skew[0] > skew[1] && skew[1] > skew[2] && skew[2] > skew[3],
            "{skew:?}"
        );
        // Larger s concentrates harder on port 0.
        let hard = gen_per(2500);
        assert!(hard[0] > skew[0], "{hard:?} vs {skew:?}");
        assert_eq!(flat.iter().sum::<usize>(), 2000);
        assert_eq!(skew.iter().sum::<usize>(), 2000);
    }

    #[test]
    fn generate_n_at_four_ports_matches_generate() {
        for w in [
            Workload::peak(64, 30),
            Workload::average(256, 40, 7),
            Workload {
                pattern: Pattern::ZipfHotspot { s_milli: 1500 },
                ..Workload::average(64, 25, 3)
            },
        ] {
            let a = generate(&w);
            let b = generate_n(&w, NPORTS);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.packet, y.packet);
                assert_eq!((x.port, x.release), (y.port, y.release));
            }
        }
    }

    #[test]
    fn fabric_uniform_is_deterministic_and_avoids_self() {
        let w = Workload {
            pattern: Pattern::FabricUniform,
            ..Workload::average(64, 200, 21)
        };
        let a = generate_n(&w, 16);
        let b = generate_n(&w, 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packet, y.packet);
            assert_eq!(x.release, y.release);
        }
        assert_eq!(a.len(), 16 * 200);
        for s in &a {
            let dst = ((s.packet.header.dst >> 16) & 0xff) as usize;
            assert_ne!(dst, s.port, "fabric-uniform must exclude self-traffic");
            assert!(dst < 16);
        }
        // Every one of the 15 foreign destinations is covered per source.
        let per = expected_per_output_n(&a, 16);
        assert!(per.iter().all(|&n| n > 100), "{per:?}");
    }

    #[test]
    fn cross_stage_hotspot_is_deterministic_and_stays_in_group() {
        let w = Workload {
            pattern: Pattern::CrossStageHotspot {
                group: 2,
                group_size: 4,
            },
            ..Workload::average(64, 50, 17)
        };
        let a = generate_n(&w, 16);
        let b = generate_n(&w, 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packet, y.packet);
        }
        let per = expected_per_output_n(&a, 16);
        // All 800 packets land on egress group 2 (external ports 8..12).
        assert_eq!(per.iter().sum::<usize>(), 800);
        for (d, &n) in per.iter().enumerate() {
            if (8..12).contains(&d) {
                assert!(n > 100, "port {d} got {n}");
            } else {
                assert_eq!(n, 0, "port {d} outside the hot group got traffic");
            }
        }
    }

    #[test]
    fn sixteen_port_permutation_wraps_the_wide_port_space() {
        let w = Workload {
            pattern: Pattern::Permutation { shift: 5 },
            ..Workload::peak(64, 3)
        };
        let sched = generate_n(&w, 16);
        for s in &sched {
            let dst = ((s.packet.header.dst >> 16) & 0xff) as usize;
            assert_eq!(dst, (s.port + 5) % 16);
        }
        assert_eq!(
            expected_per_output_n(&sched, 16),
            vec![3usize; 16],
            "a permutation loads every output equally"
        );
    }

    #[test]
    fn flow_order_violation_counting() {
        let mk = |src: u32, id: u16| {
            let mut p = Packet::synthetic(src, addr_for_port(0), 64, 64, 0);
            p.header.id = id;
            p.header.checksum = p.header.compute_checksum();
            p
        };
        // Two interleaved flows, each in order: clean.
        let ok = [mk(1, 0), mk(2, 0), mk(1, 1), mk(2, 1), mk(1, 2)];
        assert_eq!(flow_order_violations(&ok), 0);
        // Flow 1 swaps two packets: one inversion, flow 2 unaffected.
        let bad = [mk(1, 0), mk(2, 0), mk(1, 2), mk(1, 1), mk(2, 1)];
        assert_eq!(flow_order_violations(&bad), 1);
        // A duplicate id is also a violation (strictly increasing).
        let dup = [mk(1, 3), mk(1, 3)];
        assert_eq!(flow_order_violations(&dup), 1);
    }

    #[test]
    fn packets_have_valid_checksums_and_ids() {
        let sched = generate(&Workload::average(128, 20, 2));
        for s in &sched {
            assert!(s.packet.header.checksum_ok());
        }
        let ids: Vec<u16> = sched
            .iter()
            .filter(|s| s.port == 0)
            .map(|s| s.packet.header.id)
            .collect();
        assert_eq!(ids, (0..20).collect::<Vec<u16>>());
    }
}
