//! # raw-compile — schedule specialization for the Raw simulator
//!
//! The paper's router is *compile-time scheduled*: every static-network
//! crossbar setting is known before the machine runs (§5.3, §6.2). This
//! crate exploits that the same way a match-action pipeline compiler
//! does — it consumes the switch programs installed in a constructed
//! [`RawMachine`] and emits the pre-resolved step structures
//! ([`raw_sim::compiled`]) that the [`EngineMode::Compiled`] engine
//! executes: route endpoints resolved to concrete FIFO/device
//! coordinates, multicast grouping classified per instruction, idle
//! tiles and pure-sink devices dropped from the per-cycle polls.
//!
//! Two independent implementations of the lowering exist on purpose:
//! this crate compiles through the machine's *public* introspection
//! surface ([`RawMachine::switch_program`], [`RawMachine::dim`],
//! [`RawMachine::bound_device_ports`]), and
//! `RawMachine::install_compiled_plan` re-lowers every program with
//! raw-sim's private reference and rejects any disagreement. A plan that
//! installs therefore cannot change machine-observable behavior; the
//! differential proptests in this crate and the fingerprint golden tests
//! in raw-bench check the executed result is bit-identical anyway.
//!
//! Compilation is conservative: a switch program this pass declines
//! (see [`CompileOptions`]) simply stays on the interpreter — the
//! compiled engine falls back per switch, and on any structural
//! mutation the whole plan is dropped and execution degrades to
//! event-skip transparently.

use raw_sim::compiled::{
    CompiledDst, CompiledInstr, CompiledPlan, CompiledRoute, CompiledSrc, CompiledSwitch,
    InjectorSlot,
};
use raw_sim::{EngineMode, RawMachine, SwPort, TileId, NUM_STATIC_NETS, SWITCH_IMEM_INSTRS};

/// Knobs for [`compile_machine`]. The defaults compile everything
/// compilable.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Decline programs longer than this many instructions (they stay on
    /// the interpreter). Defaults to the switch instruction-memory bound;
    /// lower it to force per-switch fallback paths in tests.
    pub max_instrs: usize,
    /// Explicitly decline these `(tile, net)` switches — test hook for
    /// exercising mixed compiled/interpreted execution.
    pub skip: Vec<(TileId, usize)>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            max_instrs: SWITCH_IMEM_INSTRS,
            skip: Vec::new(),
        }
    }
}

/// What the compiler did, for logs and experiment records.
#[derive(Clone, Debug, Default)]
pub struct CompileReport {
    /// Switches lowered to specialized programs.
    pub compiled_switches: usize,
    /// Switches left on the interpreter, with the reason.
    pub fallbacks: Vec<(TileId, usize, String)>,
    /// Total routes across all compiled instructions.
    pub routes_lowered: usize,
    /// Compiled instructions whose sources are pairwise distinct (the
    /// straight-scan fast path).
    pub distinct_instrs: usize,
    /// Compiled instructions requiring the dynamic multicast-group scan.
    pub grouped_instrs: usize,
    /// Tiles given the idle fast path.
    pub idle_tiles: usize,
    /// Devices polled for injection (pure sinks are dropped).
    pub injector_devices: usize,
    /// Devices dropped from the injection poll.
    pub skipped_sinks: usize,
}

impl CompileReport {
    /// Every switch compiled, nothing interpreted.
    pub fn full_coverage(&self) -> bool {
        self.fallbacks.is_empty()
    }
}

/// Resolve one `SwPort` source at `(tile, net)` to its FIFO.
fn lower_src(tile: TileId, net: usize, src: SwPort) -> CompiledSrc {
    match src {
        SwPort::Proc => CompiledSrc::Csto {
            tile: tile.index() as u16,
        },
        p => CompiledSrc::Link {
            tile: tile.index() as u16,
            net: net as u8,
            dir: p.dir().unwrap().index() as u8,
        },
    }
}

/// Resolve one `SwPort` destination at `(tile, net)`: a local `$csti`,
/// a neighbor's link FIFO, a bound edge device, or an off-chip drop.
fn lower_dst(m: &RawMachine, tile: TileId, net: usize, dst: SwPort) -> CompiledDst {
    match dst {
        SwPort::Proc => CompiledDst::Csti {
            tile: tile.index() as u16,
            net: net as u8,
        },
        p => {
            let d = p.dir().unwrap();
            match m.dim().neighbor(tile, d) {
                Some(nb) => CompiledDst::Link {
                    tile: nb.index() as u16,
                    net: net as u8,
                    dir: d.opposite().index() as u8,
                },
                None => {
                    let found = m
                        .bound_device_ports()
                        .iter()
                        .position(|ep| ep.tile == tile && ep.net == net && ep.dir == d);
                    match found {
                        Some(i) => CompiledDst::Device { index: i as u16 },
                        None => CompiledDst::Drop,
                    }
                }
            }
        }
    }
}

/// Lower the switch program installed at `(tile, net)`, or explain why
/// it stays on the interpreter.
pub fn compile_switch(
    m: &RawMachine,
    tile: TileId,
    net: usize,
    opts: &CompileOptions,
) -> Result<CompiledSwitch, String> {
    if opts.skip.contains(&(tile, net)) {
        return Err("declined by options".into());
    }
    let prog = m.switch_program(tile, net);
    if prog.instrs.len() > opts.max_instrs {
        return Err(format!(
            "{} instructions exceed the compile bound of {}",
            prog.instrs.len(),
            opts.max_instrs
        ));
    }
    prog.validate()?;
    let instrs = prog
        .instrs
        .iter()
        .map(|i| {
            let routes: Vec<CompiledRoute> = i
                .routes
                .iter()
                .map(|r| CompiledRoute {
                    src: lower_src(tile, net, r.src),
                    dst: lower_dst(m, tile, net, r.dst),
                })
                .collect();
            let distinct_sources = routes
                .iter()
                .enumerate()
                .all(|(j, a)| routes[j + 1..].iter().all(|b| b.src != a.src));
            CompiledInstr {
                all_mask: ((1u64 << routes.len()) - 1) as u32,
                distinct_sources,
                routes,
                ctrl: i.ctrl,
            }
        })
        .collect();
    Ok(CompiledSwitch { instrs })
}

/// Compile every switch program and poll list of `machine` into a
/// [`CompiledPlan`] and install it. Switches the compiler declines stay
/// on the interpreter (recorded in the report); the plan as a whole is
/// revalidated by raw-sim at install time, so a successful return
/// guarantees bit-identical execution under [`EngineMode::Compiled`].
pub fn compile_machine(
    machine: &mut RawMachine,
    opts: &CompileOptions,
) -> Result<CompileReport, String> {
    let n = machine.dim().tiles();
    let mut report = CompileReport::default();
    let mut switches = Vec::with_capacity(n * NUM_STATIC_NETS);
    let mut idle_tiles = Vec::with_capacity(n);
    for t in 0..n {
        let tile = TileId(t as u16);
        for net in 0..NUM_STATIC_NETS {
            match compile_switch(machine, tile, net, opts) {
                Ok(cs) => {
                    report.compiled_switches += 1;
                    for i in &cs.instrs {
                        report.routes_lowered += i.routes.len();
                        if i.routes.is_empty() {
                            // Route-less control instructions count as
                            // neither scan flavor.
                        } else if i.distinct_sources {
                            report.distinct_instrs += 1;
                        } else {
                            report.grouped_instrs += 1;
                        }
                    }
                    switches.push(Some(cs));
                }
                Err(reason) => {
                    report.fallbacks.push((tile, net, reason));
                    switches.push(None);
                }
            }
        }
        let idle = machine.program_is_idle(tile);
        report.idle_tiles += idle as usize;
        idle_tiles.push(idle);
    }
    let mut injectors = Vec::new();
    for (i, p) in machine.bound_device_ports().iter().enumerate() {
        if machine.device_is_injector(i) {
            injectors.push(InjectorSlot {
                device: i as u16,
                tile: p.tile.index() as u16,
                net: p.net as u8,
                dir: p.dir.index() as u8,
            });
        } else {
            report.skipped_sinks += 1;
        }
    }
    report.injector_devices = injectors.len();
    machine.install_compiled_plan(CompiledPlan {
        switches,
        injectors,
        idle_tiles,
    })?;
    Ok(report)
}

/// Compile `machine` if (and only if) its engine is
/// [`EngineMode::Compiled`] — the hook harness constructors call
/// unconditionally. Returns the report when compilation ran.
pub fn compile_if_enabled(machine: &mut RawMachine) -> Result<Option<CompileReport>, String> {
    if machine.config().engine == EngineMode::Compiled {
        compile_machine(machine, &CompileOptions::default()).map(Some)
    } else {
        Ok(None)
    }
}

/// Pre-decode the instruction kernels of every [`raw_isa::IsaCore`]
/// program. This is a no-op hook today: `IsaCore` pre-decodes its kernel
/// IR (cached source/destination register sets) at construction time,
/// so interpreted tile kernels already run decode-free. Kept as the
/// compile-pass entry point so later kernel specializations slot in
/// behind the same call.
pub fn precompile_kernels(_machine: &mut RawMachine) {}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_sim::{
        Dir, EdgePort, GridDim, RawConfig, Route, SwitchCtrl, SwitchInstr, SwitchProgram, WordSink,
        WordSource, NET0,
    };

    fn machine(engine: EngineMode) -> RawMachine {
        let mut m = RawMachine::new(RawConfig {
            dim: GridDim { rows: 2, cols: 2 },
            engine,
            ..RawConfig::default()
        });
        for t in [0u16, 1] {
            m.set_switch_program(
                TileId(t),
                NET0,
                SwitchProgram::new(vec![SwitchInstr::new(
                    vec![Route::new(NET0, SwPort::W, SwPort::E)],
                    SwitchCtrl::Jump(0),
                )]),
            );
        }
        m.bind_device(
            EdgePort::new(TileId(0), Dir::West, NET0),
            Box::new(WordSource::new(0u32..128)),
        );
        m.bind_device(
            EdgePort::new(TileId(1), Dir::East, NET0),
            Box::new(WordSink::rate_limited(3).0),
        );
        m
    }

    #[test]
    fn compiles_and_reports() {
        let mut m = machine(EngineMode::Compiled);
        let report = compile_machine(&mut m, &CompileOptions::default()).unwrap();
        assert!(report.full_coverage());
        assert_eq!(report.compiled_switches, 8);
        assert_eq!(report.routes_lowered, 2);
        assert_eq!(report.idle_tiles, 4);
        assert_eq!(report.injector_devices, 1);
        assert_eq!(report.skipped_sinks, 1);
        assert!(m.has_compiled_plan());
    }

    #[test]
    fn skip_option_forces_fallback() {
        let mut m = machine(EngineMode::Compiled);
        let opts = CompileOptions {
            skip: vec![(TileId(0), NET0)],
            ..CompileOptions::default()
        };
        let report = compile_machine(&mut m, &opts).unwrap();
        assert_eq!(report.fallbacks.len(), 1);
        assert!(!report.full_coverage());
        assert!(m.has_compiled_plan());
    }

    #[test]
    fn compile_if_enabled_respects_engine() {
        let mut m = machine(EngineMode::EventSkip);
        assert!(compile_if_enabled(&mut m).unwrap().is_none());
        assert!(!m.has_compiled_plan());
        let mut m = machine(EngineMode::Compiled);
        assert!(compile_if_enabled(&mut m).unwrap().is_some());
        assert!(m.has_compiled_plan());
    }

    /// The independent lowering here must agree with raw-sim's reference
    /// (install_compiled_plan revalidates); run the machine to make sure
    /// the installed plan also executes identically.
    #[test]
    fn compiled_run_matches_interpreter() {
        let mut reference = machine(EngineMode::PerCycle);
        reference.run(600);
        let mut m = machine(EngineMode::Compiled);
        compile_machine(&mut m, &CompileOptions::default()).unwrap();
        m.run(600);
        assert_eq!(m.routes_fired, reference.routes_fired);
        assert_eq!(m.edge_drops, reference.edge_drops);
        for t in 0..4 {
            let tile = TileId(t);
            assert_eq!(m.stats(tile).counts, reference.stats(tile).counts);
            assert_eq!(
                m.switch_stall_cycles(tile),
                reference.switch_stall_cycles(tile)
            );
        }
    }
}
