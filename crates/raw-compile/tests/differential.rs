//! Differential proptest: randomly generated switch schedules, device
//! bindings, and fault windows must execute bit-identically on all three
//! engines (per-cycle interpreter, event-skip, compiled), including with
//! part of the fabric forced back onto the interpreter (mixed
//! compiled/fallback execution).

use proptest::prelude::*;

use raw_compile::{compile_machine, CompileOptions};
use raw_sim::{
    Dir, EdgePort, EngineMode, GridDim, RawConfig, RawMachine, Route, SwPort, SwitchCtrl,
    SwitchInstr, SwitchProgram, TileId, WordSink, WordSource, NUM_STATIC_NETS,
};

/// Tiny deterministic generator so one drawn seed reproduces the whole
/// scenario.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// A random but structurally valid switch program for `net`: random
/// routes (duplicate sources allowed — multicast groups — but each
/// destination driven at most once), random control flow with in-bounds
/// jumps, optional trailing WaitPc.
fn random_program(r: &mut Lcg, net: usize) -> SwitchProgram {
    let len = 1 + r.below(4) as usize;
    let mut instrs = Vec::with_capacity(len);
    for pc in 0..len {
        if r.chance(15) {
            instrs.push(SwitchInstr::wait_pc());
            continue;
        }
        let mut routes = Vec::new();
        let mut used_dst = Vec::new();
        for _ in 0..r.below(4) {
            let src = SwPort::ALL[r.below(5) as usize];
            let dst = SwPort::ALL[r.below(5) as usize];
            if used_dst.contains(&dst) {
                continue;
            }
            used_dst.push(dst);
            routes.push(Route::new(net, src, dst));
        }
        let ctrl = match r.below(3) {
            0 => SwitchCtrl::Next,
            1 => SwitchCtrl::Jump(r.below(len as u64) as usize),
            _ => {
                if pc + 1 == len {
                    // Loop somewhere instead of running off the end
                    // every time.
                    SwitchCtrl::Jump(r.below(len as u64) as usize)
                } else {
                    SwitchCtrl::Next
                }
            }
        };
        instrs.push(SwitchInstr::new(routes, ctrl));
    }
    let prog = SwitchProgram::new(instrs);
    prog.validate().expect("generated program must be valid");
    prog
}

fn build_machine(seed: u64, engine: EngineMode) -> RawMachine {
    let mut r = Lcg(seed ^ 0x9e37_79b9_7f4a_7c15);
    let dim = GridDim { rows: 2, cols: 3 };
    let mut m = RawMachine::new(RawConfig {
        dim,
        engine,
        ..RawConfig::default()
    });
    for t in 0..dim.tiles() {
        for net in 0..NUM_STATIC_NETS {
            if r.chance(80) {
                m.set_switch_program(TileId(t as u16), net, random_program(&mut r, net));
            }
        }
        if r.chance(30) {
            m.schedule_stall(TileId(t as u16), r.below(120), 1 + r.below(60));
        }
    }
    // Random sources/sinks on edge ports.
    for t in 0..dim.tiles() {
        let tile = TileId(t as u16);
        for dir in [Dir::North, Dir::East, Dir::South, Dir::West] {
            if dim.neighbor(tile, dir).is_some() {
                continue;
            }
            for net in 0..NUM_STATIC_NETS {
                if r.chance(35) {
                    let n = 8 + r.below(48) as u32;
                    m.bind_device(
                        EdgePort::new(tile, dir, net),
                        Box::new(WordSource::new(0..n)),
                    );
                } else if r.chance(30) {
                    let interval = 1 + r.below(4);
                    m.bind_device(
                        EdgePort::new(tile, dir, net),
                        Box::new(WordSink::rate_limited(interval).0),
                    );
                }
            }
        }
    }
    m
}

fn fingerprint(m: &RawMachine) -> Vec<u64> {
    let mut v = vec![m.cycle(), m.edge_drops, m.routes_fired];
    for t in 0..m.dim().tiles() {
        let tile = TileId(t as u16);
        v.extend(m.stats(tile).counts.iter().copied());
        v.push(m.switch_stall_cycles(tile));
        let (csto, c0, c1) = m.proc_queue_occupancy(tile);
        v.extend([csto as u64, c0 as u64, c1 as u64]);
        for net in 0..NUM_STATIC_NETS {
            let (pc, halted) = m.switch_status(tile, net);
            v.push(pc as u64);
            v.push(halted as u64);
            for dir in [Dir::North, Dir::East, Dir::South, Dir::West] {
                v.push(m.link_occupancy(tile, net, dir) as u64);
            }
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// compiled == event-skip == per-cycle on arbitrary schedules.
    #[test]
    fn engines_agree_on_random_schedules(seed in any::<u64>(), span in 50u64..400) {
        let mut reference = build_machine(seed, EngineMode::PerCycle);
        reference.run(span);
        let expect = fingerprint(&reference);

        let mut skip = build_machine(seed, EngineMode::EventSkip);
        skip.run(span);
        prop_assert_eq!(fingerprint(&skip), expect.clone());

        let mut compiled = build_machine(seed, EngineMode::Compiled);
        let report = compile_machine(&mut compiled, &CompileOptions::default()).unwrap();
        prop_assert!(report.full_coverage());
        compiled.run(span);
        prop_assert_eq!(fingerprint(&compiled), expect.clone());

        // Mixed execution: force a pseudo-random subset of switches back
        // onto the interpreter.
        let mut mixed = build_machine(seed, EngineMode::Compiled);
        let mut r = Lcg(seed ^ 0xdead_beef);
        let skip_list: Vec<(TileId, usize)> = (0..mixed.dim().tiles())
            .flat_map(|t| (0..NUM_STATIC_NETS).map(move |net| (TileId(t as u16), net)))
            .filter(|_| r.chance(40))
            .collect();
        let opts = CompileOptions { skip: skip_list, ..CompileOptions::default() };
        compile_machine(&mut mixed, &opts).unwrap();
        mixed.run(span);
        prop_assert_eq!(fingerprint(&mixed), expect);
    }
}
