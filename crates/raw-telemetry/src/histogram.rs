//! Fixed-bucket log-linear latency histogram (HDR-histogram style).
//!
//! Values are bucketed exactly up to `2^(sub_bits + 1)`, then into
//! `2^sub_bits` linear sub-buckets per power-of-two range, bounding the
//! relative quantization error at `2^-sub_bits`. All arithmetic is
//! integer-only and the bucket array is sized once at construction —
//! recording never allocates, so a histogram can sit on the simulator's
//! hot path.

/// Integer log-linear histogram with quantile extraction.
#[derive(Clone, Debug)]
pub struct Histogram {
    sub_bits: u32,
    max_value: u64,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram covering `0..=max_value` with `2^sub_bits` sub-buckets
    /// per power-of-two range. Values above `max_value` are clamped into
    /// the top bucket (and counted in `saturated` semantics via `max`).
    pub fn new(max_value: u64, sub_bits: u32) -> Histogram {
        assert!((1..=16).contains(&sub_bits), "sub_bits out of range");
        let max_value = max_value.max(2);
        let buckets = Self::index_of(max_value, sub_bits) + 1;
        Histogram {
            sub_bits,
            max_value,
            counts: vec![0; buckets],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Default shape for cycle-denominated latencies: ~1.6% relative
    /// error (`sub_bits = 6`) over a billion-cycle range.
    pub fn for_cycles() -> Histogram {
        Histogram::new(1 << 30, 6)
    }

    #[inline]
    fn index_of(v: u64, sub_bits: u32) -> usize {
        if v < (2u64 << sub_bits) {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let row = (msb - sub_bits) as usize;
            let sub = ((v >> (msb - sub_bits)) & ((1u64 << sub_bits) - 1)) as usize;
            ((row + 1) << sub_bits) + sub
        }
    }

    /// Lowest value mapping to bucket `idx`.
    #[inline]
    fn value_of(&self, idx: usize) -> u64 {
        let b = self.sub_bits as usize;
        if idx < (2usize << b) {
            idx as u64
        } else {
            let row = (idx >> b) - 1;
            let sub = (idx & ((1 << b) - 1)) as u64;
            ((1u64 << self.sub_bits) + sub) << row
        }
    }

    /// Width of bucket `idx` (1 in the exact region, `2^row` beyond).
    #[inline]
    fn width_of(&self, idx: usize) -> u64 {
        let b = self.sub_bits as usize;
        if idx < (2usize << b) {
            1
        } else {
            1u64 << ((idx >> b) - 1)
        }
    }

    /// Record one observation. Integer-only; never allocates.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = Self::index_of(v.min(self.max_value), self.sub_bits);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th observation, clamped to the
    /// largest value actually recorded.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let hi = self.value_of(idx) + self.width_of(idx) - 1;
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// The standard reporting tuple `(p50, p90, p99, p999)`.
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.value_at_quantile(0.50),
            self.value_at_quantile(0.90),
            self.value_at_quantile(0.99),
            self.value_at_quantile(0.999),
        )
    }

    /// Merge another histogram with the same shape into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "histogram shape mismatch");
        assert_eq!(self.max_value, other.max_value, "histogram shape mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        let mut h = Histogram::new(1 << 20, 5);
        for v in 0..64u64 {
            h.record(v);
        }
        // 64 observations 0..63: p50 lands on the 32nd (value 31).
        assert_eq!(h.value_at_quantile(0.5), 31);
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn log_region_error_is_bounded() {
        let mut h = Histogram::new(1 << 30, 6);
        for v in [100_000u64, 200_000, 400_000, 800_000] {
            h.record(v);
        }
        for (q, exact) in [(0.25, 100_000u64), (0.5, 200_000), (0.75, 400_000)] {
            let got = h.value_at_quantile(q);
            let err = got.abs_diff(exact) as f64 / exact as f64;
            assert!(err < 1.0 / 32.0, "q={q}: got {got}, want ~{exact}");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let mut h = Histogram::for_cycles();
        for v in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 1_000] {
            h.record(v);
        }
        let (p50, p90, p99, p999) = h.percentiles();
        assert_eq!(p50, 3);
        assert_eq!(p90, 3);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        // Tail quantiles never exceed the recorded maximum.
        assert!(p999 <= 1_000);
        assert!(p99 >= 990, "p99 {p99} should land in the 1000 bucket");
    }

    #[test]
    fn recording_never_grows_the_bucket_array() {
        let mut h = Histogram::new(1 << 16, 4);
        let cap = h.counts.len();
        for v in 0..100_000u64 {
            h.record(v * 17); // exercises clamping past max_value
        }
        assert_eq!(h.counts.len(), cap);
        assert_eq!(h.count(), 100_000);
    }

    #[test]
    fn mean_and_merge() {
        let mut a = Histogram::new(1 << 10, 4);
        let mut b = Histogram::new(1 << 10, 4);
        a.record(10);
        a.record(20);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 20.0).abs() < 1e-12);
        assert_eq!(a.max(), 30);
    }

    #[test]
    fn bucket_geometry_is_contiguous() {
        // Every value maps to a bucket whose [lo, lo+width) range contains it,
        // and consecutive buckets tile the axis with no gaps.
        let h = Histogram::new(1 << 20, 3);
        let mut expected_lo = 0u64;
        for idx in 0..h.counts.len() {
            let lo = h.value_of(idx);
            assert_eq!(lo, expected_lo, "gap before bucket {idx}");
            expected_lo = lo + h.width_of(idx);
        }
        for v in [0u64, 1, 15, 16, 17, 255, 256, 1023, 65_535, 1 << 20] {
            let idx = Histogram::index_of(v, 3);
            let lo = h.value_of(idx);
            assert!(
                lo <= v && v < lo + h.width_of(idx),
                "value {v} outside bucket {idx}"
            );
        }
    }
}
