//! Neutral activity-trace export: the CSV and ASCII renderings behind
//! Figure 7-3, decoupled from the simulator's `Activity` type so every
//! trace consumer goes through one exporter.
//!
//! `raw_sim::TraceWindow` converts into an [`ActivityTrace`]; its old
//! `to_csv` / `render_ascii` methods are deprecated thin adapters over
//! this module that keep the `fig7_3_*.csv` output format byte-stable.

use std::fmt::Write as _;

/// Coarse class of a per-cycle state, used by the ASCII renderer (the
/// paper's Figure 7-3 plots busy vs. "blocked on transmit, receive, or
/// cache miss" vs. idle).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ActivityClass {
    Busy,
    Blocked,
    Idle,
}

/// A window of dense per-tile, per-cycle state samples. `samples[tile][i]`
/// is an index into `states`; cycle numbers start at `start_cycle`.
#[derive(Clone, Debug)]
pub struct ActivityTrace {
    pub start_cycle: u64,
    /// `(csv name, class)` per state index.
    pub states: Vec<(String, ActivityClass)>,
    pub samples: Vec<Vec<u8>>,
}

impl ActivityTrace {
    /// CSV rows `tile,cycle,state` for external plotting — the stable
    /// `fig7_3_*.csv` format.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tile,cycle,state\n");
        for (t, row) in self.samples.iter().enumerate() {
            for (i, &s) in row.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},{},{}",
                    t,
                    self.start_cycle + i as u64,
                    self.states[s as usize].0
                );
            }
        }
        out
    }

    /// Render in the style of Figure 7-3: one row per tile, buckets of
    /// `bucket` cycles; `#` mostly-busy, `.` mostly-blocked (gray in the
    /// paper), ` ` mostly idle.
    pub fn render_ascii(&self, bucket: usize) -> String {
        let bucket = bucket.max(1);
        let mut out = String::new();
        for (t, row) in self.samples.iter().enumerate() {
            let _ = write!(out, "{t:>2} |");
            for chunk in row.chunks(bucket) {
                let busy = chunk
                    .iter()
                    .filter(|&&s| self.states[s as usize].1 == ActivityClass::Busy)
                    .count();
                let blocked = chunk
                    .iter()
                    .filter(|&&s| self.states[s as usize].1 == ActivityClass::Blocked)
                    .count();
                let idle = chunk.len() - busy - blocked;
                let c = if busy >= blocked && busy >= idle {
                    '#'
                } else if blocked >= idle {
                    '.'
                } else {
                    ' '
                };
                out.push(c);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ActivityTrace {
        ActivityTrace {
            start_cycle: 10,
            states: vec![
                ("idle".to_string(), ActivityClass::Idle),
                ("busy".to_string(), ActivityClass::Busy),
                ("blocked_send".to_string(), ActivityClass::Blocked),
            ],
            samples: vec![vec![1, 1, 2, 0], vec![0, 0, 0, 0]],
        }
    }

    #[test]
    fn csv_format_is_stable() {
        let csv = sample_trace().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "tile,cycle,state");
        assert_eq!(lines[1], "0,10,busy");
        assert_eq!(lines[3], "0,12,blocked_send");
        assert_eq!(lines[5], "1,10,idle");
    }

    #[test]
    fn ascii_majority_rule() {
        let s = sample_trace().render_ascii(2);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        // Tile 0: [busy,busy] -> '#', [blocked,idle] -> '.' (ties favor
        // busy over blocked over idle).
        assert!(lines[0].ends_with("#."));
        assert!(lines[1].ends_with("  "));
    }
}
