//! The telemetry sink trait and its two canonical implementations.
//!
//! The simulator and the router programs publish events into a
//! [`TelemetrySink`] behind `Option<SharedSink>`: when no sink is attached
//! the instrumentation is a single `None` branch, and when [`NullSink`] is
//! attached every callback is a defaulted empty method — either way the
//! hot path does no allocation and no recording work. [`crate::Recorder`]
//! is the full implementation behind `repro -- telemetry`.

use std::any::Any;
use std::sync::{Arc, Mutex};

/// A packet lifecycle stage, in pipeline order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// First wire word of the packet accepted by the ingress processor.
    IngressAccept,
    /// Header handed to the lookup processor over the dynamic network.
    LookupIssue,
    /// Route result received back from the lookup processor.
    LookupComplete,
    /// First crossbar grant won for the packet (token protocol).
    CrossbarGrant,
    /// First payload word leaves on the egress side.
    FirstWordEgress,
    /// Last payload word leaves on the egress side.
    LastWordEgress,
}

/// Refined per-cycle state of a tile processor. Exactly one state is
/// credited per tile per simulated cycle, so per tile
/// `sum(all states) == cycles simulated` — the conservation invariant the
/// telemetry report asserts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TileState {
    /// No work issued and no stall hint.
    Idle,
    /// Retired useful work.
    Busy,
    /// Blocked writing a full FIFO (transmit side).
    FifoFull,
    /// Blocked reading an empty FIFO (receive side).
    FifoEmpty,
    /// Stalled on a data-cache miss.
    CacheStall,
    /// Waiting on the crossbar token/grant protocol (hinted by the
    /// ingress program; otherwise these cycles would read as idle).
    TokenWait,
    /// Waiting on a per-slot arbitration decision (iSLIP / crosspoint
    /// schedulers; hinted by the ingress program in scheduler mode).
    /// Kept separate from [`TileState::TokenWait`] so scheduler
    /// head-to-heads attribute their wait cycles to the arbiter.
    ArbWait,
}

impl TileState {
    pub const COUNT: usize = 7;
    pub const ALL: [TileState; TileState::COUNT] = [
        TileState::Idle,
        TileState::Busy,
        TileState::FifoFull,
        TileState::FifoEmpty,
        TileState::CacheStall,
        TileState::TokenWait,
        TileState::ArbWait,
    ];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            TileState::Idle => 0,
            TileState::Busy => 1,
            TileState::FifoFull => 2,
            TileState::FifoEmpty => 3,
            TileState::CacheStall => 4,
            TileState::TokenWait => 5,
            TileState::ArbWait => 6,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            TileState::Idle => "idle",
            TileState::Busy => "busy",
            TileState::FifoFull => "fifo_full",
            TileState::FifoEmpty => "fifo_empty",
            TileState::CacheStall => "cache_stall",
            TileState::TokenWait => "token_wait",
            TileState::ArbWait => "arb_wait",
        }
    }

    /// True for the stall states (everything but busy/idle).
    #[inline]
    pub fn is_stall(self) -> bool {
        !matches!(self, TileState::Idle | TileState::Busy)
    }
}

/// Why a switch crossing point could not fire a ready route this cycle.
/// The first refusal in the switch's own readiness order wins: source
/// word not visible, then destination FIFO full, then edge device
/// refusing the word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwitchStallCause {
    /// Source FIFO has no visible word.
    FifoEmpty,
    /// A destination FIFO (processor input or neighbor link) is full.
    FifoFull,
    /// A bound edge device refused the word this cycle.
    DeviceBackpressure,
}

impl SwitchStallCause {
    pub const COUNT: usize = 3;
    pub const ALL: [SwitchStallCause; SwitchStallCause::COUNT] = [
        SwitchStallCause::FifoEmpty,
        SwitchStallCause::FifoFull,
        SwitchStallCause::DeviceBackpressure,
    ];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            SwitchStallCause::FifoEmpty => 0,
            SwitchStallCause::FifoFull => 1,
            SwitchStallCause::DeviceBackpressure => 2,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            SwitchStallCause::FifoEmpty => "fifo_empty",
            SwitchStallCause::FifoFull => "fifo_full",
            SwitchStallCause::DeviceBackpressure => "device_backpressure",
        }
    }
}

/// Why the router discarded a packet instead of delivering it. Ingress
/// classifies each drop exactly once, so per port
/// `delivered + sum(drops by reason) == offered` — the accounting
/// invariant the chaos battery asserts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Header checksum did not verify.
    BadChecksum,
    /// IP version field was not 4.
    BadVersion,
    /// Header length field below the minimum or unsupported.
    BadIhl,
    /// Total-length field shorter than a minimal header.
    BadLength,
    /// TTL expired at the router (0 or 1 on arrival).
    TtlExpired,
    /// The wire went idle mid-packet: fewer words arrived than the
    /// header claimed.
    Truncated,
}

impl DropReason {
    pub const COUNT: usize = 6;
    pub const ALL: [DropReason; DropReason::COUNT] = [
        DropReason::BadChecksum,
        DropReason::BadVersion,
        DropReason::BadIhl,
        DropReason::BadLength,
        DropReason::TtlExpired,
        DropReason::Truncated,
    ];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            DropReason::BadChecksum => 0,
            DropReason::BadVersion => 1,
            DropReason::BadIhl => 2,
            DropReason::BadLength => 3,
            DropReason::TtlExpired => 4,
            DropReason::Truncated => 5,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            DropReason::BadChecksum => "bad_checksum",
            DropReason::BadVersion => "bad_version",
            DropReason::BadIhl => "bad_ihl",
            DropReason::BadLength => "bad_length",
            DropReason::TtlExpired => "ttl_expired",
            DropReason::Truncated => "truncated",
        }
    }
}

/// Receiver for instrumentation events. Every method defaults to a no-op
/// so [`NullSink`] (and any partial sink) compiles down to empty virtual
/// calls; implementations override only what they consume.
pub trait TelemetrySink: Send {
    /// Stamp `stage` for packet `id` on ingress port `port` at `cycle`.
    /// Ids are per-port monotone counters assigned at ingress-accept.
    fn packet_event(&mut self, _cycle: u64, _port: u8, _id: u32, _stage: Stage) {}

    /// Destination port set (bitmask) resolved by the lookup for `(port, id)`.
    fn packet_dst(&mut self, _port: u8, _id: u32, _dst_mask: u8) {}

    /// Egress-side stamp keyed by `(source port, output port)` — the
    /// egress tile knows the fragment's source but not the ingress-side
    /// packet id, so sinks match these to ids by grant order (exact for
    /// FIFO-queued unicast traffic; best-effort under VOQ/multicast).
    fn egress_event(&mut self, _cycle: u64, _src_port: u8, _out_port: u8, _stage: Stage) {}

    /// Credit `span` consecutive processor cycles on `tile` in `state`.
    fn tile_cycles(&mut self, _tile: u16, _state: TileState, _span: u64) {}

    /// Credit `span` consecutive stalled switch cycles on `(tile, net)`
    /// to `cause`.
    fn switch_stalls(&mut self, _tile: u16, _net: u8, _cause: SwitchStallCause, _span: u64) {}

    /// A packet was classified as undeliverable and dropped at ingress
    /// `port` for `reason` at `cycle`.
    fn packet_drop(&mut self, _cycle: u64, _port: u8, _reason: DropReason) {}

    /// Downcast support so a caller can recover its concrete sink after a
    /// run (e.g. a [`crate::Recorder`] to build a report from).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The disabled sink: every callback is the defaulted no-op.
#[derive(Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// How sinks are shared between the machine and the tile programs: the
/// machine locks once per cycle phase, the programs lock only on the rare
/// per-packet events.
pub type SharedSink = Arc<Mutex<dyn TelemetrySink>>;

/// Wrap a concrete sink for attachment. Keep a clone of the returned
/// handle: after the run, lock it and recover the concrete sink with
/// `as_any_mut().downcast_mut::<S>()`.
pub fn shared<S: TelemetrySink + 'static>(sink: S) -> SharedSink {
    Arc::new(Mutex::new(sink))
}

/// Is the shared handle a [`NullSink`]? Producers check this once at
/// attach time and skip publishing entirely — every NullSink callback is
/// a no-op, so eliding the lock-and-call is observationally identical
/// and keeps the disabled path at branch cost.
pub fn is_null(sink: &SharedSink) -> bool {
    sink.lock()
        .unwrap()
        .as_any_mut()
        .downcast_mut::<NullSink>()
        .is_some()
}

/// Run `f` against the concrete sink behind a shared handle. Panics if
/// the concrete type does not match.
pub fn with_sink<S: TelemetrySink + 'static, R>(
    sink: &SharedSink,
    f: impl FnOnce(&mut S) -> R,
) -> R {
    let mut g = sink.lock().unwrap();
    let s = g
        .as_any_mut()
        .downcast_mut::<S>()
        .expect("sink concrete type mismatch");
    f(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.packet_event(1, 0, 0, Stage::IngressAccept);
        s.tile_cycles(3, TileState::Busy, 10);
        s.switch_stalls(3, 0, SwitchStallCause::FifoEmpty, 2);
        assert!(s.as_any_mut().is::<NullSink>());
    }

    #[test]
    fn state_indices_are_a_permutation() {
        let mut seen = [false; TileState::COUNT];
        for s in TileState::ALL {
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let mut seen = [false; SwitchStallCause::COUNT];
        for c in SwitchStallCause::ALL {
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let mut seen = [false; DropReason::COUNT];
        for r in DropReason::ALL {
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn shared_roundtrip() {
        let h = shared(NullSink);
        h.lock().unwrap().tile_cycles(0, TileState::Idle, 1);
        with_sink::<NullSink, _>(&h, |s| {
            s.tile_cycles(1, TileState::Busy, 1);
        });
    }
}
