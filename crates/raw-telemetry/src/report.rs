//! Serializable telemetry summaries: per-stage breakdowns, per-output
//! latency percentiles, and stall attribution tables — the payload of
//! `results/telemetry.json`.

use serde::Serialize;

use crate::histogram::Histogram;
use crate::recorder::{Recorder, StageSpan};
use crate::sink::{DropReason, SwitchStallCause, TileState};

/// Percentile row for one pipeline stage, aggregated over all packets.
#[derive(Clone, Debug, Serialize)]
pub struct StageStats {
    pub stage: String,
    pub count: u64,
    pub mean_cycles: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
}

/// End-to-end latency percentiles for one output port.
#[derive(Clone, Debug, Serialize)]
pub struct OutputStats {
    pub port: u8,
    pub count: u64,
    pub mean_cycles: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
}

/// Refined per-tile cycle accounting. The conservation invariant is
/// `busy + idle + fifo_full + fifo_empty + cache_stall + token_wait +
/// arb_wait == total`.
#[derive(Clone, Debug, Serialize)]
pub struct TileStallStats {
    pub tile: u16,
    pub total: u64,
    pub busy: u64,
    pub idle: u64,
    pub fifo_full: u64,
    pub fifo_empty: u64,
    pub cache_stall: u64,
    pub token_wait: u64,
    pub arb_wait: u64,
    /// Dominant stall cause by count ("none" if the tile never stalled).
    pub top_stall: String,
}

/// Stall attribution for one tile's switch crossing point on one static
/// network.
#[derive(Clone, Debug, Serialize)]
pub struct SwitchStallStats {
    pub tile: u16,
    pub net: u8,
    pub fifo_empty: u64,
    pub fifo_full: u64,
    pub device_backpressure: u64,
}

/// Classified drop counters for one ingress port (omitted from the
/// summary when the port never dropped).
#[derive(Clone, Debug, Serialize)]
pub struct PortDropStats {
    pub port: u8,
    pub bad_checksum: u64,
    pub bad_version: u64,
    pub bad_ihl: u64,
    pub bad_length: u64,
    pub ttl_expired: u64,
    pub truncated: u64,
    pub total: u64,
}

/// The full telemetry report for one instrumented run.
#[derive(Clone, Debug, Serialize)]
pub struct TelemetrySummary {
    pub packets_completed: u64,
    pub packets_open: u64,
    pub unmatched_egress: u64,
    pub packets_dropped: u64,
    pub stages: Vec<StageStats>,
    pub per_output: Vec<OutputStats>,
    pub tiles: Vec<TileStallStats>,
    pub switch_links: Vec<SwitchStallStats>,
    pub drops: Vec<PortDropStats>,
}

fn stat_row(name: &str, h: &Histogram) -> (String, u64, f64, u64, u64, u64, u64, u64) {
    let (p50, p90, p99, p999) = h.percentiles();
    (
        name.to_string(),
        h.count(),
        h.mean(),
        p50,
        p90,
        p99,
        p999,
        h.max(),
    )
}

impl Recorder {
    /// Histogram of one stage interval over all completed packets.
    pub fn stage_histogram(&self, span: StageSpan) -> Histogram {
        let mut h = Histogram::for_cycles();
        for life in self.lives() {
            if let Some(v) = span.of(life) {
                h.record(v);
            }
        }
        h
    }

    /// Histogram of total residence time for packets leaving `port`.
    pub fn output_histogram(&self, port: u8) -> Histogram {
        let mut h = Histogram::for_cycles();
        for life in self.lives() {
            if life.dst == port {
                if let Some(v) = StageSpan::Total.of(life) {
                    h.record(v);
                }
            }
        }
        h
    }

    /// Build the serializable summary. `ports` bounds the per-output
    /// table; tiles and nets come from the recorder's own shape.
    pub fn summary(&self, ports: usize) -> TelemetrySummary {
        let stages = StageSpan::ALL
            .iter()
            .map(|&s| {
                let h = self.stage_histogram(s);
                let (stage, count, mean_cycles, p50, p90, p99, p999, max) = stat_row(s.name(), &h);
                StageStats {
                    stage,
                    count,
                    mean_cycles,
                    p50,
                    p90,
                    p99,
                    p999,
                    max,
                }
            })
            .collect();

        let per_output = (0..ports as u8)
            .map(|p| {
                let h = self.output_histogram(p);
                let (_, count, mean_cycles, p50, p90, p99, p999, max) = stat_row("", &h);
                OutputStats {
                    port: p,
                    count,
                    mean_cycles,
                    p50,
                    p90,
                    p99,
                    p999,
                    max,
                }
            })
            .collect();

        let tiles = (0..self.tiles())
            .map(|t| {
                let c = self.tile_state_counts(t);
                let stall_states = TileState::ALL.iter().filter(|s| s.is_stall());
                let top = stall_states
                    .max_by_key(|s| c[s.index()])
                    .filter(|s| c[s.index()] > 0);
                TileStallStats {
                    tile: t as u16,
                    total: c.iter().sum(),
                    busy: c[TileState::Busy.index()],
                    idle: c[TileState::Idle.index()],
                    fifo_full: c[TileState::FifoFull.index()],
                    fifo_empty: c[TileState::FifoEmpty.index()],
                    cache_stall: c[TileState::CacheStall.index()],
                    token_wait: c[TileState::TokenWait.index()],
                    arb_wait: c[TileState::ArbWait.index()],
                    top_stall: top.map_or("none".to_string(), |s| s.name().to_string()),
                }
            })
            .collect();

        let mut switch_links = Vec::new();
        for t in 0..self.tiles() {
            for n in 0..self.nets() {
                let c = self.switch_stall_counts(t, n);
                if c.iter().all(|&x| x == 0) {
                    continue;
                }
                switch_links.push(SwitchStallStats {
                    tile: t as u16,
                    net: n as u8,
                    fifo_empty: c[SwitchStallCause::FifoEmpty.index()],
                    fifo_full: c[SwitchStallCause::FifoFull.index()],
                    device_backpressure: c[SwitchStallCause::DeviceBackpressure.index()],
                });
            }
        }

        let mut drops = Vec::new();
        for p in 0..ports {
            let c = self.drop_counts(p);
            if c.iter().all(|&x| x == 0) {
                continue;
            }
            drops.push(PortDropStats {
                port: p as u8,
                bad_checksum: c[DropReason::BadChecksum.index()],
                bad_version: c[DropReason::BadVersion.index()],
                bad_ihl: c[DropReason::BadIhl.index()],
                bad_length: c[DropReason::BadLength.index()],
                ttl_expired: c[DropReason::TtlExpired.index()],
                truncated: c[DropReason::Truncated.index()],
                total: c.iter().sum(),
            });
        }

        TelemetrySummary {
            packets_completed: self.lives().len() as u64,
            packets_open: self.open_packets() as u64,
            unmatched_egress: self.unmatched_egress,
            packets_dropped: self.drops_total(),
            stages,
            per_output,
            tiles,
            switch_links,
            drops,
        }
    }

    /// Check the conservation invariant against an external cycle count:
    /// every tile that was credited at all must account for exactly
    /// `expected_total` cycles. Returns the offending tiles.
    pub fn conservation_violations(&self, expected_total: u64) -> Vec<(usize, u64)> {
        (0..self.tiles())
            .map(|t| (t, self.tile_total(t)))
            .filter(|&(_, total)| total != 0 && total != expected_total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Stage, TelemetrySink};

    #[test]
    fn summary_tables_have_expected_shape() {
        let mut r = Recorder::new(16, 2);
        for id in 0..10u32 {
            let base = id as u64 * 100;
            r.packet_event(base, 0, id, Stage::IngressAccept);
            r.packet_event(base + 4, 0, id, Stage::LookupIssue);
            r.packet_dst(0, id, 1 << 2);
            r.packet_event(base + 10, 0, id, Stage::LookupComplete);
            r.packet_event(base + 30, 0, id, Stage::CrossbarGrant);
            r.egress_event(base + 34, 0, 2, Stage::FirstWordEgress);
            r.egress_event(base + 50, 0, 2, Stage::LastWordEgress);
        }
        r.tile_cycles(0, TileState::Busy, 900);
        r.tile_cycles(0, TileState::TokenWait, 100);
        let s = r.summary(4);
        assert_eq!(s.packets_completed, 10);
        assert_eq!(s.stages.len(), StageSpan::ALL.len());
        let total = s.stages.iter().find(|x| x.stage == "total").unwrap();
        assert_eq!(total.p50, 50);
        assert_eq!(s.per_output.len(), 4);
        assert_eq!(s.per_output[2].count, 10);
        assert_eq!(s.per_output[0].count, 0);
        assert_eq!(s.tiles[0].top_stall, "token_wait");
        assert_eq!(s.tiles[0].total, 1000);
    }

    #[test]
    fn conservation_check_flags_mismatch() {
        let mut r = Recorder::new(2, 2);
        r.tile_cycles(0, TileState::Busy, 100);
        r.tile_cycles(1, TileState::Idle, 99);
        let v = r.conservation_violations(100);
        assert_eq!(v, vec![(1, 99)]);
    }
}
