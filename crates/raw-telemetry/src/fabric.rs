//! Fabric-plane telemetry: per-link credit/occupancy statistics and
//! per-stage latency summaries for multi-router fabrics (raw-fabric).
//!
//! The fabric executor owns the raw counters and histograms; these are
//! the serializable shapes it reports through `results/fabric.json` and
//! the test batteries. They live here so the telemetry plane remains
//! the one vocabulary for observability, and so raw-chaos can check
//! link-level conservation without depending on the bench crate.

use serde::{Deserialize, Serialize};

use crate::Histogram;

/// Lifetime statistics of one inter-router link (a bounded FIFO with a
/// per-epoch drain rate and credit-based backpressure).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Index of the link in the fabric's topology plan.
    pub link: usize,
    pub from_router: usize,
    pub from_port: usize,
    pub to_router: usize,
    pub to_port: usize,
    /// Packets that traversed the link (entered its queue).
    pub packets: u64,
    /// High-water mark of the link queue, in packets.
    pub max_occupancy: usize,
    /// Low-water mark of the sender's credit count (capacity minus
    /// occupancy, sampled at every epoch boundary).
    pub min_credits: usize,
    /// Epochs in which low credits forced a backpressure stall onto the
    /// sender's egress port.
    pub backpressure_epochs: u64,
    /// Epochs in which an injected fault (raw-chaos) froze the link's
    /// drain entirely.
    pub stalled_epochs: u64,
}

/// A latency distribution reduced to the row an experiment table or
/// JSON report wants: one fabric stage (or the end-to-end total).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageLatency {
    pub stage: String,
    pub count: u64,
    pub mean_cycles: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

impl StageLatency {
    /// Reduce a recorded histogram to its report row.
    pub fn from_histogram(stage: &str, h: &Histogram) -> StageLatency {
        let (p50, p90, p99, _p999) = h.percentiles();
        StageLatency {
            stage: stage.to_string(),
            count: h.count(),
            mean_cycles: h.mean(),
            p50,
            p90,
            p99,
            max: h.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_latency_reduces_a_histogram() {
        let mut h = Histogram::for_cycles();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = StageLatency::from_histogram("middle", &h);
        assert_eq!(s.stage, "middle");
        assert_eq!(s.count, 100);
        assert!(s.mean_cycles > 45.0 && s.mean_cycles < 56.0);
        assert!(s.p50 >= 45 && s.p50 <= 56, "p50 {}", s.p50);
        assert!(s.p99 >= 95, "p99 {}", s.p99);
        assert!(s.max >= 100);
    }

    #[test]
    fn link_stats_roundtrip_json() {
        let l = LinkStats {
            link: 3,
            from_router: 1,
            from_port: 2,
            to_router: 5,
            to_port: 1,
            packets: 400,
            max_occupancy: 9,
            min_credits: 2,
            backpressure_epochs: 7,
            stalled_epochs: 1,
        };
        let s = serde_json::to_string_pretty(&l).unwrap();
        let back: LinkStats = serde_json::from_str(&s).unwrap();
        assert_eq!(back, l);
    }
}
