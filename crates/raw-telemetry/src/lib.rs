//! # raw-telemetry — instrumentation for the Raw router reproduction
//!
//! A zero-overhead-when-disabled measurement layer threaded through
//! `raw-sim` (cycle engine) and `raw-xbar` (tile programs), answering the
//! question the paper's end-to-end throughput curves leave open: *where
//! does the time go?* Four pillars:
//!
//! * **Packet lifecycle tracing** — each packet is stamped at
//!   ingress-accept, lookup-issue/complete, crossbar-grant, and
//!   first/last-word-egress ([`Stage`]); the [`Recorder`] derives a
//!   per-stage cycle breakdown ([`StageSpan`]).
//! * **Latency histograms** — fixed-bucket log-linear [`Histogram`]s
//!   (HDR style, integer-only, allocation-free after setup) with
//!   p50/p90/p99/p999 extraction per output port and per stage.
//! * **Stall attribution** — every tile cycle is classified into a
//!   refined [`TileState`] (busy, idle, fifo-full, fifo-empty,
//!   cache-stall, token-wait) and every stalled switch crossing into a
//!   [`SwitchStallCause`] (fifo-empty, fifo-full, device-backpressure),
//!   with the conservation invariant `sum(states) == cycles`.
//! * **Exporters** — a Chrome `trace_event` writer ([`chrome_trace`])
//!   for `chrome://tracing`/Perfetto, serializable summaries
//!   ([`TelemetrySummary`]) for `results/telemetry.json`, and the
//!   neutral Figure 7-3 activity exporter ([`ActivityTrace`]).
//!
//! The simulator publishes into an `Option<`[`SharedSink`]`>`: with no
//! sink attached instrumentation is a single branch per cycle phase, and
//! [`NullSink`] turns every callback into a defaulted no-op — either way
//! the hot path allocates nothing, preserving the event-skip fast path.

pub mod chrome;
pub mod export;
pub mod fabric;
pub mod histogram;
pub mod recorder;
pub mod report;
pub mod sink;

pub use chrome::chrome_trace;
pub use export::{ActivityClass, ActivityTrace};
pub use fabric::{LinkStats, StageLatency};
pub use histogram::Histogram;
pub use recorder::{PacketLife, Recorder, StageSpan};
pub use report::{
    OutputStats, PortDropStats, StageStats, SwitchStallStats, TelemetrySummary, TileStallStats,
};
pub use sink::{
    is_null, shared, with_sink, DropReason, NullSink, SharedSink, Stage, SwitchStallCause,
    TelemetrySink, TileState,
};
