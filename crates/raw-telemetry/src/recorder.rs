//! The full recording sink: packet lifecycles, per-tile state counters,
//! and per-(tile, net) switch stall attribution.

use std::collections::{HashMap, VecDeque};

use crate::sink::{DropReason, Stage, SwitchStallCause, TelemetrySink, TileState};

/// A completed packet's lifecycle stamps (cycle numbers).
#[derive(Clone, Copy, Debug)]
pub struct PacketLife {
    /// Ingress port and per-port packet id.
    pub port: u8,
    pub id: u32,
    /// Output port the last egress copy left on.
    pub dst: u8,
    pub accept: u64,
    pub lookup_issue: Option<u64>,
    pub lookup_complete: Option<u64>,
    pub grant: Option<u64>,
    pub first_word: Option<u64>,
    pub last_word: u64,
}

/// A derived per-stage interval over a [`PacketLife`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageSpan {
    /// Ingress-accept to lookup-issue: header assembly + ingress queueing.
    Ingress,
    /// Lookup-issue to lookup-complete: the lookup processor round trip.
    Lookup,
    /// Lookup-complete to first crossbar grant: token/bid wait.
    XbarWait,
    /// Grant to first word out: crossbar traversal + egress launch.
    EgressLaunch,
    /// First word out to last word out: serialization on the output wire.
    Serialize,
    /// Accept to last word out: the packet's full residence time.
    Total,
}

impl StageSpan {
    pub const ALL: [StageSpan; 6] = [
        StageSpan::Ingress,
        StageSpan::Lookup,
        StageSpan::XbarWait,
        StageSpan::EgressLaunch,
        StageSpan::Serialize,
        StageSpan::Total,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StageSpan::Ingress => "ingress",
            StageSpan::Lookup => "lookup",
            StageSpan::XbarWait => "xbar_wait",
            StageSpan::EgressLaunch => "egress_launch",
            StageSpan::Serialize => "serialize",
            StageSpan::Total => "total",
        }
    }

    /// The interval in cycles, when both endpoints were stamped.
    pub fn of(self, life: &PacketLife) -> Option<u64> {
        let span = |a: Option<u64>, b: Option<u64>| -> Option<u64> { b?.checked_sub(a?) };
        match self {
            StageSpan::Ingress => span(Some(life.accept), life.lookup_issue),
            StageSpan::Lookup => span(life.lookup_issue, life.lookup_complete),
            StageSpan::XbarWait => span(life.lookup_complete, life.grant),
            StageSpan::EgressLaunch => span(life.grant, life.first_word),
            StageSpan::Serialize => span(life.first_word, Some(life.last_word)),
            StageSpan::Total => Some(life.last_word - life.accept),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct OpenPacket {
    accept: u64,
    lookup_issue: Option<u64>,
    lookup_complete: Option<u64>,
    grant: Option<u64>,
    first_word: Option<u64>,
    dst_mask: u8,
    /// Egress copies still outstanding (popcount of dst_mask at grant).
    copies_left: u8,
}

/// The full recording [`TelemetrySink`].
///
/// Egress stamps arrive keyed by `(source port, output port)` — the
/// egress tile sees the fragment tag, not the ingress packet id — so the
/// recorder matches them to ids through a per-`(src, dst)` FIFO of
/// granted packets. Fragments of packets on the same `(src, dst)` pair
/// stream through the crossbar in grant order, so the match is exact for
/// FIFO-queued unicast traffic (the configuration the telemetry report
/// runs); under VOQ or multicast it is best-effort.
pub struct Recorder {
    tiles: usize,
    nets: usize,
    tile_states: Vec<[u64; TileState::COUNT]>,
    switch_stalls: Vec<Vec<[u64; SwitchStallCause::COUNT]>>,
    open: HashMap<(u8, u32), OpenPacket>,
    egress_fifo: HashMap<(u8, u8), VecDeque<(u8, u32)>>,
    lives: Vec<PacketLife>,
    /// Per-ingress-port drop counters, indexed by [`DropReason::index`].
    drops: Vec<[u64; DropReason::COUNT]>,
    /// Egress stamps that found no granted packet to match (sink attached
    /// mid-run, or reordering the FIFO model cannot express).
    pub unmatched_egress: u64,
}

impl Recorder {
    pub fn new(tiles: usize, nets: usize) -> Recorder {
        Recorder {
            tiles,
            nets,
            tile_states: vec![[0; TileState::COUNT]; tiles],
            switch_stalls: vec![vec![[0; SwitchStallCause::COUNT]; nets]; tiles],
            open: HashMap::new(),
            egress_fifo: HashMap::new(),
            lives: Vec::new(),
            drops: Vec::new(),
            unmatched_egress: 0,
        }
    }

    pub fn tiles(&self) -> usize {
        self.tiles
    }

    pub fn nets(&self) -> usize {
        self.nets
    }

    /// Completed packet lifecycles, in completion order.
    pub fn lives(&self) -> &[PacketLife] {
        &self.lives
    }

    /// Packets stamped at ingress but not yet fully egressed.
    pub fn open_packets(&self) -> usize {
        self.open.len()
    }

    /// Per-tile refined state counters, indexed by [`TileState::index`].
    pub fn tile_state_counts(&self, tile: usize) -> [u64; TileState::COUNT] {
        self.tile_states[tile]
    }

    /// Total cycles credited to `tile` across all states.
    pub fn tile_total(&self, tile: usize) -> u64 {
        self.tile_states[tile].iter().sum()
    }

    /// Per-(tile, net) switch stall counters, indexed by
    /// [`SwitchStallCause::index`].
    pub fn switch_stall_counts(&self, tile: usize, net: usize) -> [u64; SwitchStallCause::COUNT] {
        self.switch_stalls[tile][net]
    }

    /// Drop counters for ingress `port`, indexed by [`DropReason::index`]
    /// (all zero if the port never dropped).
    pub fn drop_counts(&self, port: usize) -> [u64; DropReason::COUNT] {
        self.drops
            .get(port)
            .copied()
            .unwrap_or([0; DropReason::COUNT])
    }

    /// Total drops recorded across all ports and reasons.
    pub fn drops_total(&self) -> u64 {
        self.drops.iter().flatten().sum()
    }
}

impl TelemetrySink for Recorder {
    fn packet_event(&mut self, cycle: u64, port: u8, id: u32, stage: Stage) {
        match stage {
            Stage::IngressAccept => {
                self.open.insert(
                    (port, id),
                    OpenPacket {
                        accept: cycle,
                        lookup_issue: None,
                        lookup_complete: None,
                        grant: None,
                        first_word: None,
                        dst_mask: 0,
                        copies_left: 0,
                    },
                );
            }
            Stage::LookupIssue => {
                if let Some(p) = self.open.get_mut(&(port, id)) {
                    p.lookup_issue.get_or_insert(cycle);
                }
            }
            Stage::LookupComplete => {
                if let Some(p) = self.open.get_mut(&(port, id)) {
                    p.lookup_complete.get_or_insert(cycle);
                }
            }
            Stage::CrossbarGrant => {
                if let Some(p) = self.open.get_mut(&(port, id)) {
                    if p.grant.is_none() {
                        p.grant = Some(cycle);
                        let mask = p.dst_mask;
                        p.copies_left = mask.count_ones() as u8;
                        for dst in 0..8u8 {
                            if mask & (1 << dst) != 0 {
                                self.egress_fifo
                                    .entry((port, dst))
                                    .or_default()
                                    .push_back((port, id));
                            }
                        }
                    }
                }
            }
            // Egress-side stages arrive via `egress_event`.
            Stage::FirstWordEgress | Stage::LastWordEgress => {}
        }
    }

    fn packet_dst(&mut self, port: u8, id: u32, dst_mask: u8) {
        if let Some(p) = self.open.get_mut(&(port, id)) {
            p.dst_mask = dst_mask;
        }
    }

    fn egress_event(&mut self, cycle: u64, src_port: u8, out_port: u8, stage: Stage) {
        let Some(queue) = self.egress_fifo.get_mut(&(src_port, out_port)) else {
            self.unmatched_egress += 1;
            return;
        };
        let Some(&key) = queue.front() else {
            self.unmatched_egress += 1;
            return;
        };
        match stage {
            Stage::FirstWordEgress => {
                if let Some(p) = self.open.get_mut(&key) {
                    p.first_word.get_or_insert(cycle);
                }
            }
            Stage::LastWordEgress => {
                queue.pop_front();
                let done = if let Some(p) = self.open.get_mut(&key) {
                    p.copies_left = p.copies_left.saturating_sub(1);
                    p.copies_left == 0
                } else {
                    false
                };
                if done {
                    let p = self.open.remove(&key).expect("open packet");
                    self.lives.push(PacketLife {
                        port: key.0,
                        id: key.1,
                        dst: out_port,
                        accept: p.accept,
                        lookup_issue: p.lookup_issue,
                        lookup_complete: p.lookup_complete,
                        grant: p.grant,
                        first_word: p.first_word,
                        last_word: cycle,
                    });
                }
            }
            _ => {}
        }
    }

    fn tile_cycles(&mut self, tile: u16, state: TileState, span: u64) {
        self.tile_states[tile as usize][state.index()] += span;
    }

    fn switch_stalls(&mut self, tile: u16, net: u8, cause: SwitchStallCause, span: u64) {
        self.switch_stalls[tile as usize][net as usize][cause.index()] += span;
    }

    fn packet_drop(&mut self, _cycle: u64, port: u8, reason: DropReason) {
        if self.drops.len() <= port as usize {
            self.drops.resize(port as usize + 1, [0; DropReason::COUNT]);
        }
        self.drops[port as usize][reason.index()] += 1;
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lifecycle(r: &mut Recorder, port: u8, id: u32, dst: u8, base: u64) {
        r.packet_event(base, port, id, Stage::IngressAccept);
        r.packet_event(base + 4, port, id, Stage::LookupIssue);
        r.packet_dst(port, id, 1 << dst);
        r.packet_event(base + 12, port, id, Stage::LookupComplete);
        r.packet_event(base + 20, port, id, Stage::CrossbarGrant);
        r.egress_event(base + 24, port, dst, Stage::FirstWordEgress);
        r.egress_event(base + 40, port, dst, Stage::LastWordEgress);
    }

    #[test]
    fn lifecycle_intervals_are_derived() {
        let mut r = Recorder::new(16, 2);
        lifecycle(&mut r, 1, 7, 2, 100);
        assert_eq!(r.lives().len(), 1);
        assert_eq!(r.open_packets(), 0);
        let life = r.lives()[0];
        assert_eq!(life.dst, 2);
        assert_eq!(StageSpan::Ingress.of(&life), Some(4));
        assert_eq!(StageSpan::Lookup.of(&life), Some(8));
        assert_eq!(StageSpan::XbarWait.of(&life), Some(8));
        assert_eq!(StageSpan::EgressLaunch.of(&life), Some(4));
        assert_eq!(StageSpan::Serialize.of(&life), Some(16));
        assert_eq!(StageSpan::Total.of(&life), Some(40));
    }

    #[test]
    fn grant_order_matching_is_fifo_per_pair() {
        let mut r = Recorder::new(16, 2);
        // Two packets from port 0 to port 3, granted in order.
        for id in [0u32, 1] {
            r.packet_event(10 + id as u64, 0, id, Stage::IngressAccept);
            r.packet_dst(0, id, 1 << 3);
            r.packet_event(20 + id as u64, 0, id, Stage::CrossbarGrant);
        }
        r.egress_event(30, 0, 3, Stage::FirstWordEgress);
        r.egress_event(35, 0, 3, Stage::LastWordEgress);
        r.egress_event(40, 0, 3, Stage::FirstWordEgress);
        r.egress_event(45, 0, 3, Stage::LastWordEgress);
        assert_eq!(r.lives().len(), 2);
        assert_eq!(r.lives()[0].id, 0);
        assert_eq!(r.lives()[0].last_word, 35);
        assert_eq!(r.lives()[1].id, 1);
        assert_eq!(r.lives()[1].last_word, 45);
        assert_eq!(r.unmatched_egress, 0);
    }

    #[test]
    fn repeated_grants_stamp_only_the_first() {
        let mut r = Recorder::new(16, 2);
        r.packet_event(0, 2, 9, Stage::IngressAccept);
        r.packet_dst(2, 9, 1 << 1);
        r.packet_event(50, 2, 9, Stage::CrossbarGrant);
        r.packet_event(90, 2, 9, Stage::CrossbarGrant); // second fragment
        r.egress_event(100, 2, 1, Stage::LastWordEgress);
        assert_eq!(r.lives()[0].grant, Some(50));
    }

    #[test]
    fn unmatched_egress_is_counted_not_fatal() {
        let mut r = Recorder::new(16, 2);
        r.egress_event(5, 0, 0, Stage::FirstWordEgress);
        assert_eq!(r.unmatched_egress, 1);
        assert!(r.lives().is_empty());
    }

    #[test]
    fn counters_accumulate_and_conserve() {
        let mut r = Recorder::new(4, 2);
        r.tile_cycles(0, TileState::Busy, 10);
        r.tile_cycles(0, TileState::Idle, 5);
        r.tile_cycles(0, TileState::TokenWait, 85);
        assert_eq!(r.tile_total(0), 100);
        let c = r.tile_state_counts(0);
        assert_eq!(c[TileState::Busy.index()], 10);
        r.switch_stalls(3, 1, SwitchStallCause::DeviceBackpressure, 7);
        assert_eq!(
            r.switch_stall_counts(3, 1)[SwitchStallCause::DeviceBackpressure.index()],
            7
        );
    }

    #[test]
    fn drops_accumulate_per_port_and_reason() {
        let mut r = Recorder::new(16, 2);
        assert_eq!(r.drop_counts(3), [0; DropReason::COUNT]);
        r.packet_drop(10, 1, DropReason::BadChecksum);
        r.packet_drop(20, 1, DropReason::BadChecksum);
        r.packet_drop(30, 3, DropReason::Truncated);
        assert_eq!(r.drop_counts(1)[DropReason::BadChecksum.index()], 2);
        assert_eq!(r.drop_counts(3)[DropReason::Truncated.index()], 1);
        assert_eq!(r.drops_total(), 3);
    }
}
