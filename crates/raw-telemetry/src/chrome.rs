//! Chrome `trace_event` JSON export.
//!
//! Emits the stable subset of the trace-event format that both
//! `chrome://tracing` and Perfetto accept: one process per ingress port,
//! one thread lane per pipeline stage, and `"X"` (complete) events whose
//! `ts`/`dur` are simulated cycles rendered as microseconds.

use std::fmt::Write as _;

use crate::recorder::{PacketLife, StageSpan};

/// Thread lane per derived stage, in pipeline order (skip Total — the
/// per-stage events already tile the packet's residence).
const LANES: [StageSpan; 5] = [
    StageSpan::Ingress,
    StageSpan::Lookup,
    StageSpan::XbarWait,
    StageSpan::EgressLaunch,
    StageSpan::Serialize,
];

/// Start cycle of `span` within `life`, when stamped.
fn span_start(span: StageSpan, life: &PacketLife) -> Option<u64> {
    match span {
        StageSpan::Ingress => Some(life.accept),
        StageSpan::Lookup => life.lookup_issue,
        StageSpan::XbarWait => life.lookup_complete,
        StageSpan::EgressLaunch => life.grant,
        StageSpan::Serialize => life.first_word,
        StageSpan::Total => Some(life.accept),
    }
}

/// Render up to `max_packets` packet lifecycles as a Chrome trace. The
/// result is a complete, self-contained JSON document.
pub fn chrome_trace(lives: &[PacketLife], max_packets: usize) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&ev);
    };

    // Metadata: name each port's process and each stage's thread lane.
    let mut ports: Vec<u8> = lives.iter().take(max_packets).map(|l| l.port).collect();
    ports.sort_unstable();
    ports.dedup();
    for &p in &ports {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":0,\
                 \"args\":{{\"name\":\"ingress port {p}\"}}}}"
            ),
        );
        for (lane, span) in LANES.iter().enumerate() {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":{lane},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    span.name()
                ),
            );
        }
    }

    for life in lives.iter().take(max_packets) {
        for (lane, &span) in LANES.iter().enumerate() {
            let (Some(ts), Some(dur)) = (span_start(span, life), span.of(life)) else {
                continue;
            };
            let mut ev = String::new();
            let _ = write!(
                ev,
                "{{\"name\":\"{}\",\"cat\":\"packet\",\"ph\":\"X\",\"ts\":{ts},\
                 \"dur\":{dur},\"pid\":{},\"tid\":{lane},\
                 \"args\":{{\"id\":{},\"dst\":{}}}}}",
                span.name(),
                life.port,
                life.id,
                life.dst
            );
            push(&mut out, &mut first, ev);
        }
    }

    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn life() -> PacketLife {
        PacketLife {
            port: 1,
            id: 42,
            dst: 3,
            accept: 100,
            lookup_issue: Some(104),
            lookup_complete: Some(112),
            grant: Some(130),
            first_word: Some(134),
            last_word: 150,
        }
    }

    #[test]
    fn trace_is_valid_json_with_all_lanes() {
        let s = chrome_trace(&[life()], 10);
        let v: serde::Value = serde_json::from_str(&s).expect("valid JSON");
        let serde::Value::Object(fields) = &v else {
            panic!("not an object")
        };
        assert!(fields.iter().any(|(k, _)| k == "traceEvents"));
        let serde::Value::Array(evs) = v.get("traceEvents").unwrap() else {
            panic!("not an array")
        };
        // 6 metadata events (1 process + 5 lanes) + 5 stage events.
        assert_eq!(evs.len(), 11);
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"name\":\"serialize\""));
        assert!(s.contains("\"ts\":134,\"dur\":16"));
    }

    #[test]
    fn packet_cap_is_respected() {
        let lives: Vec<PacketLife> = (0..100).map(|i| PacketLife { id: i, ..life() }).collect();
        let s = chrome_trace(&lives, 3);
        assert_eq!(s.matches("\"ph\":\"X\"").count(), 15);
    }

    #[test]
    fn partial_lives_skip_unstamped_lanes() {
        let mut l = life();
        l.lookup_issue = None;
        l.lookup_complete = None;
        let s = chrome_trace(&[l], 10);
        // Ingress and lookup lanes cannot be derived without the issue stamp.
        assert!(!s.contains("\"name\":\"lookup\",\"cat\""));
        assert!(s.contains("\"name\":\"serialize\",\"cat\""));
    }
}
