//! The adversarial battery: random fault campaigns against the full
//! router, checking graceful degradation (count-and-drop, never panic,
//! never wedge), flow-order preservation, conservation of every
//! accounting plane, and bit-identical replay in both engine modes.

use proptest::prelude::*;

use raw_chaos::*;
use raw_fabric::{FabricConfig, Topology};
use raw_net::{CorruptRng, Packet};
use raw_sim::{EngineMode, RawConfig, NUM_STATIC_NETS};
use raw_telemetry::{shared, with_sink, DropReason, Recorder, SharedSink};
use raw_workloads::{generate, generate_n, Arrivals, Pattern, ScheduledPacket, Workload};
use raw_xbar::{IngressQueueing, RawRouter, RouterConfig, NPORTS};

/// VOQ ingress (so truncation faults are legal) on the 64-byte quantum.
fn voq_cfg(engine: EngineMode) -> RouterConfig {
    RouterConfig {
        quantum_words: 16,
        cut_through: true,
        queueing: IngressQueueing::Voq,
        raw: RawConfig {
            engine,
            ..RawConfig::default()
        },
        ..RouterConfig::default()
    }
}

/// Derive a full random-but-valid [`FaultPlan`] from one seed, so the
/// proptest signature stays one draw and the plan replays exactly.
fn random_plan(seed: u64) -> FaultPlan {
    let mut r = CorruptRng::new(seed ^ 0x7b5e_55ed);
    let mut plan = FaultPlan::zero(r.next_u64());
    plan.header_flip_ppm = r.below(60_000);
    plan.payload_flip_ppm = r.below(60_000);
    plan.bad_checksum_ppm = r.below(60_000);
    plan.ttl_expire_ppm = r.below(60_000);
    plan.bad_version_ppm = r.below(60_000);
    plan.bad_ihl_ppm = r.below(60_000);
    plan.truncate_ppm = r.below(60_000);
    plan.lookup_miss_ppm = r.below(40_000);
    plan.lookup_penalty_cycles = r.below(64);
    for _ in 0..r.below(4) {
        plan.tile_stalls.push(StallSpec {
            port: r.below(4) as usize,
            element: r.below(4) as u8,
            start: 200 + u64::from(r.below(4_000)),
            len: 1 + u64::from(r.below(700)),
        });
    }
    if r.chance_ppm(500_000) {
        plan.input_pauses.push(WindowSpec {
            port: r.below(4) as usize,
            start: u64::from(r.below(4_000)),
            len: 1 + u64::from(r.below(500)),
        });
    }
    if r.chance_ppm(500_000) {
        plan.output_stalls.push(WindowSpec {
            port: r.below(4) as usize,
            start: u64::from(r.below(4_000)),
            len: 1 + u64::from(r.below(300)),
        });
    }
    plan
}

/// Run a chaos campaign and return the full delivered streams alongside
/// the fingerprint (for byte-level comparisons).
fn chaos_streams(
    cfg: RouterConfig,
    plan: &FaultPlan,
    sched: &[ScheduledPacket],
) -> (u64, Vec<Vec<(u64, Packet)>>) {
    let sink: SharedSink = shared(Recorder::new(16, NUM_STATIC_NETS));
    let mut cr = ChaosRouter::try_new(cfg, chaos_table(), plan.clone(), Some(sink)).unwrap();
    for sp in sched {
        cr.offer(sp.port, sp.release, &sp.packet);
    }
    assert!(cr.router.run_until_drained(4_000_000), "wedged");
    let streams = (0..NPORTS).map(|p| cr.router.delivered(p)).collect();
    (fingerprint(&cr.router), streams)
}

/// The unwrapped baseline with the identical telemetry arrangement.
fn plain_streams(cfg: RouterConfig, sched: &[ScheduledPacket]) -> (u64, Vec<Vec<(u64, Packet)>>) {
    let sink: SharedSink = shared(Recorder::new(16, NUM_STATIC_NETS));
    let mut r = RawRouter::new_with_telemetry(cfg, chaos_table(), sink);
    for sp in sched {
        r.offer(sp.port, sp.release, &sp.packet);
    }
    assert!(r.run_until_drained(4_000_000), "wedged");
    let streams = (0..NPORTS).map(|p| r.delivered(p)).collect();
    (fingerprint(&r), streams)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random fault plan over uniform traffic: accounting closes
    /// (`delivered + dropped == offered`), every drop lands in exactly
    /// one classified bucket mirrored by telemetry, no corrupt packet
    /// leaks through the fabric, per-tile cycle conservation holds, and
    /// surviving packets are never reordered within a flow.
    #[test]
    fn random_fault_plans_degrade_gracefully(
        seed in any::<u64>(),
        wl_seed in any::<u64>(),
    ) {
        let plan = random_plan(seed);
        let sched = generate(&Workload::average(64, 40, wl_seed));
        let res = run_chaos(
            voq_cfg(EngineMode::EventSkip), chaos_table(), &plan, &sched, 4_000_000,
        ).unwrap();
        prop_assert!(res.errors.is_empty(), "plan seed {seed:#x}: {:?}", res.errors);
        prop_assert!(res.drained, "plan seed {seed:#x} wedged");
        prop_assert_eq!(res.offered, sched.len() as u64);
        prop_assert_eq!(
            res.flow_order_violations, 0,
            "plan seed {:#x} reordered a flow", seed
        );
        prop_assert_eq!(res.dropped, res.injected.expected_drops());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The same plan and traffic replay bit-identically: per-cycle,
    /// event-skip, and compiled engines, and repeated runs of each, all
    /// agree on the exact delivered words, arrival cycles, drop
    /// counters, and final cycle count.
    #[test]
    fn same_seed_reruns_are_bit_identical_in_every_engine_mode(
        seed in any::<u64>(),
        wl_seed in any::<u64>(),
    ) {
        let plan = random_plan(seed);
        let sched = generate(&Workload::average(64, 30, wl_seed));
        let (ff_a, ff_streams) = chaos_streams(voq_cfg(EngineMode::EventSkip), &plan, &sched);
        let (ff_b, _) = chaos_streams(voq_cfg(EngineMode::EventSkip), &plan, &sched);
        let (pc, pc_streams) = chaos_streams(voq_cfg(EngineMode::PerCycle), &plan, &sched);
        let (co, co_streams) = chaos_streams(voq_cfg(EngineMode::Compiled), &plan, &sched);
        prop_assert_eq!(ff_a, ff_b, "fast-forward rerun diverged (seed {:#x})", seed);
        prop_assert_eq!(ff_a, pc, "engine modes diverged (seed {:#x})", seed);
        prop_assert_eq!(co, pc, "compiled engine diverged (seed {:#x})", seed);
        prop_assert_eq!(ff_streams, pc_streams.clone());
        prop_assert_eq!(co_streams, pc_streams);
    }
}

/// Satellite: a zero-rate plan is a no-op wrapper — byte-identical
/// delivered streams versus the unwrapped router on the fig7-1 peak and
/// average workloads, in every engine mode.
#[test]
fn zero_rate_plan_is_byte_identical_to_unwrapped_router() {
    let peak = generate(&Workload::peak(64, 60));
    let avg = generate(&Workload::average(64, 60, 42));
    for (name, sched) in [("fig7-1-peak", &peak), ("fig7-1-avg", &avg)] {
        for engine in [
            EngineMode::PerCycle,
            EngineMode::EventSkip,
            EngineMode::Compiled,
        ] {
            let plan = FaultPlan::zero(0xC4A0);
            let (cf, cs) = chaos_streams(voq_cfg(engine), &plan, sched);
            let (pf, ps) = plain_streams(voq_cfg(engine), sched);
            assert_eq!(cs, ps, "{name} {engine:?}: delivered streams differ");
            assert_eq!(cf, pf, "{name} {engine:?}: fingerprints differ");
        }
    }
}

/// Acceptance: the reference plan (seed 0xC4A0, 1% header corruption,
/// one 500-cycle stall window per tile, 0.5% lookup misses) completes
/// the fig7-1 peak workload at both packet-size corners with full
/// accounting, and replays identically.
#[test]
fn reference_plan_completes_fig7_1_peak_at_both_corners() {
    for bytes in [64usize, 1024] {
        let quantum = (bytes / 4).min(256);
        let cfg = || RouterConfig {
            quantum_words: quantum,
            cut_through: bytes / 4 <= 256,
            ..RouterConfig::default()
        };
        let packets = if bytes == 64 { 200 } else { 40 };
        let sched = generate(&Workload::peak(bytes, packets));
        let plan = FaultPlan::reference();
        let run = || run_chaos(cfg(), chaos_table(), &plan, &sched, 8_000_000).unwrap();
        let a = run();
        assert!(a.errors.is_empty(), "{bytes}B: {:?}", a.errors);
        assert!(a.drained, "{bytes}B: reference plan wedged the router");
        assert_eq!(a.delivered + a.dropped, a.offered);
        assert_eq!(a.flow_order_violations, 0);
        let b = run();
        assert_eq!(a.fingerprint, b.fingerprint, "{bytes}B: rerun diverged");
        assert_eq!(a.drops, b.drops);
    }
}

/// Satellite: seeded mutants of the drop accounting. Breaking any one
/// [`DropReason`] counter — in either direction, with or without a
/// sympathetic total bump, or on the telemetry mirror — must trip the
/// conservation check. This is what makes the invariant trustworthy.
#[test]
fn broken_drop_counters_are_caught_by_conservation() {
    let sched = generate(&Workload::peak(64, 10));
    for i in 0..DropReason::COUNT {
        let sink: SharedSink = shared(Recorder::new(16, NUM_STATIC_NETS));
        let mut r = RawRouter::new_with_telemetry(
            voq_cfg(EngineMode::EventSkip),
            chaos_table(),
            sink.clone(),
        );
        for sp in &sched {
            r.offer(sp.port, sp.release, &sp.packet);
        }
        assert!(r.run_until_drained(1_000_000));
        let errs = |r: &RawRouter, sink: &SharedSink| {
            with_sink::<Recorder, _>(sink, |rec| conservation_errors(r, Some(rec)))
        };
        assert!(errs(&r, &sink).is_empty(), "clean run must conserve");

        // Mutant A: a classified bucket bumped without the total.
        let port = i % NPORTS;
        r.ig_stats[port].lock().unwrap().drops[i] += 1;
        let found = errs(&r, &sink);
        assert!(
            found.iter().any(|e| e.contains("classified drop sum")),
            "mutant A on bucket {i} escaped: {found:?}"
        );

        // Mutant B: the total bumped in sympathy — the per-port sums now
        // agree, but offered-conservation and the telemetry mirror break.
        r.ig_stats[port].lock().unwrap().packets_dropped += 1;
        let found = errs(&r, &sink);
        assert!(
            found.iter().any(|e| e.contains("offered")),
            "mutant B on bucket {i} escaped offered-conservation: {found:?}"
        );
        assert!(
            found.iter().any(|e| e.contains("telemetry")),
            "mutant B on bucket {i} escaped the telemetry mirror: {found:?}"
        );

        // Mutant C: a spurious drop event on the telemetry side only.
        r.ig_stats[port].lock().unwrap().drops[i] -= 1;
        r.ig_stats[port].lock().unwrap().packets_dropped -= 1;
        assert!(errs(&r, &sink).is_empty(), "mutants must revert cleanly");
        sink.lock()
            .unwrap()
            .packet_drop(0, port as u8, DropReason::ALL[i]);
        let found = errs(&r, &sink);
        assert!(
            found.iter().any(|e| e.contains("telemetry")),
            "mutant C on bucket {i} escaped: {found:?}"
        );
    }
}

/// A random-but-valid fabric fault campaign from one seed: external
/// packet corruption, inter-router link stalls, and external line-card
/// windows. Single-router window classes (tile stalls, per-port
/// pauses) stay empty — their port indices mean internal ports.
fn random_fabric_plan(seed: u64) -> FabricFaultPlan {
    let mut r = CorruptRng::new(seed ^ 0xfa6b_71c0_c105_0000);
    let mut plan = FabricFaultPlan::zero(r.next_u64());
    plan.packet.header_flip_ppm = r.below(40_000);
    plan.packet.payload_flip_ppm = r.below(40_000);
    plan.packet.bad_checksum_ppm = r.below(40_000);
    plan.packet.ttl_expire_ppm = r.below(40_000);
    plan.packet.bad_version_ppm = r.below(40_000);
    plan.packet.bad_ihl_ppm = r.below(40_000);
    plan.packet.truncate_ppm = r.below(40_000);
    // Arm lookup faults only half the time, so the other half checks
    // the flow-order invariant (a forced miss legally splits a flow
    // across two middle stages).
    if r.chance_ppm(500_000) {
        plan.packet.lookup_miss_ppm = r.below(20_000);
        plan.packet.lookup_penalty_cycles = r.below(64);
    }
    for _ in 0..r.below(4) {
        plan.link_stalls.push(LinkStallSpec {
            link: r.below(32) as usize,
            start_epoch: u64::from(r.below(16)),
            epochs: 1 + u64::from(r.below(6)),
        });
    }
    if r.chance_ppm(500_000) {
        plan.ext_input_pauses.push(WindowSpec {
            port: r.below(16) as usize,
            start: u64::from(r.below(4_000)),
            len: 1 + u64::from(r.below(600)),
        });
    }
    if r.chance_ppm(500_000) {
        plan.ext_output_stalls.push(WindowSpec {
            port: r.below(16) as usize,
            start: u64::from(r.below(4_000)),
            len: 1 + u64::from(r.below(600)),
        });
    }
    plan
}

/// One full fabric chaos campaign; returns the fabric for inspection.
fn run_chaos_fabric(plan: &FabricFaultPlan, wl_seed: u64, threaded: bool) -> ChaosFabric {
    let cfg = FabricConfig {
        topology: Topology::Clos16,
        epoch_cycles: 256,
        router: RouterConfig {
            queueing: IngressQueueing::Voq,
            ..FabricConfig::default().router
        },
        ..FabricConfig::default()
    };
    let w = Workload {
        pattern: Pattern::FabricUniform,
        arrivals: Arrivals::Saturation,
        packet_bytes: 64,
        packets_per_port: 10,
        seed: wl_seed,
        ttl: 64,
    };
    let mut cf = ChaosFabric::try_new(cfg, plan.clone()).unwrap();
    for sp in generate_n(&w, 16) {
        cf.offer(sp.port, sp.release, &sp.packet);
    }
    assert!(cf.fabric.run_until_drained(50_000, threaded), "wedged");
    cf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Graceful degradation scales to the fabric: any random fault
    /// campaign against the 16-port Clos keeps every conservation
    /// plane closed, never wedges, replays bit-identically on both
    /// executors, and — when no lookup faults are armed — never
    /// reorders a surviving flow.
    #[test]
    fn random_fabric_fault_plans_degrade_gracefully(
        seed in any::<u64>(),
        wl_seed in any::<u64>(),
    ) {
        let plan = random_fabric_plan(seed);
        let cf = run_chaos_fabric(&plan, wl_seed, false);
        let errs = cf.fabric.conservation_errors();
        prop_assert!(errs.is_empty(), "plan seed {seed:#x}: {errs:?}");
        prop_assert_eq!(cf.fabric.offered(), 160);
        if plan.packet.lookup_miss_ppm == 0 {
            prop_assert_eq!(
                cf.fabric.flow_order_violations(), 0,
                "plan seed {:#x} reordered a flow", seed
            );
        }
        let replay = run_chaos_fabric(&plan, wl_seed, true);
        prop_assert_eq!(replay.injected, cf.injected);
        prop_assert_eq!(
            replay.fabric.fingerprint(), cf.fabric.fingerprint(),
            "plan seed {:#x} diverged between executors", seed
        );
    }
}
