//! # raw-chaos — deterministic fault injection for the Raw router
//!
//! The paper's router is evaluated under clean traffic; a deployable
//! switch must *degrade gracefully* under dirty traffic and partial
//! hardware faults. This crate threads a seedable fault-injection layer
//! through the whole stack:
//!
//! * **Packet corruption at the line card** — header bit flips, payload
//!   bit flips, bad checksums, expired TTLs, garbage version/IHL
//!   nibbles, and tail truncation, all from the deterministic mutators
//!   in [`raw_net::corrupt`];
//! * **Tile stalls** — any of a port's four pipeline tiles can be frozen
//!   for an N-cycle window via [`raw_sim::RawMachine::schedule_stall`];
//! * **Channel faults** — input line cards pause (emit idle frames) and
//!   output line cards apply backpressure for scheduled windows;
//! * **Lookup faults** — the Lookup Processors force table misses that
//!   fall back to the default route after a penalty
//!   ([`raw_xbar::LookupFault`]).
//!
//! Everything is driven by a [`FaultPlan`]: one seed plus per-class
//! rates and windows. The same plan replays bit-identically, in both
//! the per-cycle and event-skip engine modes, which is what makes an
//! adversarial campaign debuggable.
//!
//! Graceful degradation is checked, not hoped for:
//! [`conservation_errors`] asserts that every offered packet is either
//! delivered or counted in exactly one per-port
//! [`raw_telemetry::DropReason`] bucket, that the ingress counters and
//! the telemetry recorder agree, and that the per-tile cycle-state
//! accounting still closes. [`run_chaos`] packages a full
//! offer-run-check campaign for the test battery and the
//! `repro -- chaos` soak.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use raw_lookup::{ForwardingTable, RouteEntry};
use raw_net::{corrupt, CorruptRng, Packet};
use raw_sim::NUM_STATIC_NETS;
use raw_telemetry::{shared, with_sink, DropReason, Recorder, SharedSink, TelemetrySummary};
use raw_workloads::ScheduledPacket;
use raw_xbar::devices::WIRE_IDLE;
use raw_xbar::{IngressQueueing, LookupFault, RawRouter, RouterConfig, NPORTS};

pub mod fabric;

pub use fabric::{ChaosFabric, FabricFaultPlan, LinkStallSpec};

/// Pipeline-element indices within a port's tile slice (the
/// [`raw_xbar::PortTiles`] fields, in order).
pub const ELEM_INGRESS: u8 = 0;
pub const ELEM_LOOKUP: u8 = 1;
pub const ELEM_CROSSBAR: u8 = 2;
pub const ELEM_EGRESS: u8 = 3;

/// A stall window on one tile of one port's pipeline slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallSpec {
    pub port: usize,
    /// [`ELEM_INGRESS`] | [`ELEM_LOOKUP`] | [`ELEM_CROSSBAR`] |
    /// [`ELEM_EGRESS`].
    pub element: u8,
    pub start: u64,
    pub len: u64,
}

/// A pause/backpressure window on one line card.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    pub port: usize,
    pub start: u64,
    pub len: u64,
}

/// The complete, serializable description of a fault campaign. All
/// probabilities are parts-per-million per offered packet; all faults
/// derive from `seed`, so a plan is a pure function from traffic to
/// outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub seed: u64,
    /// Flip one random header bit (never `total_len`, so the packet
    /// still frames exactly). Always rejected at the ingress parse.
    pub header_flip_ppm: u32,
    /// Flip one random payload bit. The IP checksum covers the header
    /// only, so the packet is still *delivered* — as on a real router.
    pub payload_flip_ppm: u32,
    /// XOR the checksum field with a random nonzero value.
    pub bad_checksum_ppm: u32,
    /// Rewrite TTL to 0 or 1 with a correct checksum: a well-formed
    /// packet that expires at this hop.
    pub ttl_expire_ppm: u32,
    /// Garbage version nibble, checksum recomputed.
    pub bad_version_ppm: u32,
    /// Garbage IHL nibble, checksum recomputed.
    pub bad_ihl_ppm: u32,
    /// Cut 1..len-1 tail words and let the wire go idle mid-packet.
    /// Requires VOQ ingress (store-and-forward): a cut-through ingress
    /// streams words into the fabric before the tail can be missed.
    pub truncate_ppm: u32,
    /// Forced lookup-table miss probability (per lookup, per port).
    pub lookup_miss_ppm: u32,
    /// Extra cycles a forced miss costs before the default route.
    pub lookup_penalty_cycles: u32,
    pub tile_stalls: Vec<StallSpec>,
    pub input_pauses: Vec<WindowSpec>,
    pub output_stalls: Vec<WindowSpec>,
}

impl FaultPlan {
    /// The all-zero plan: a [`ChaosRouter`] under it must behave
    /// byte-identically to an unwrapped [`RawRouter`].
    pub fn zero(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            header_flip_ppm: 0,
            payload_flip_ppm: 0,
            bad_checksum_ppm: 0,
            ttl_expire_ppm: 0,
            bad_version_ppm: 0,
            bad_ihl_ppm: 0,
            truncate_ppm: 0,
            lookup_miss_ppm: 0,
            lookup_penalty_cycles: 0,
            tile_stalls: Vec::new(),
            input_pauses: Vec::new(),
            output_stalls: Vec::new(),
        }
    }

    /// The reference soak plan: seed `0xC4A0`, 1% header corruption,
    /// one 500-cycle stall window on every tile (staggered so the
    /// windows tile the warm-up region instead of freezing the whole
    /// fabric at once), and 0.5% forced lookup misses.
    pub fn reference() -> FaultPlan {
        let mut tile_stalls = Vec::new();
        for port in 0..NPORTS {
            for element in [ELEM_INGRESS, ELEM_LOOKUP, ELEM_CROSSBAR, ELEM_EGRESS] {
                let k = (port * 4 + element as usize) as u64;
                tile_stalls.push(StallSpec {
                    port,
                    element,
                    start: 10_000 + k * 1_500,
                    len: 500,
                });
            }
        }
        FaultPlan {
            header_flip_ppm: 10_000,
            lookup_miss_ppm: 5_000,
            lookup_penalty_cycles: 48,
            tile_stalls,
            ..FaultPlan::zero(0xC4A0)
        }
    }

    fn rates(&self) -> [u32; 7] {
        [
            self.header_flip_ppm,
            self.bad_checksum_ppm,
            self.bad_version_ppm,
            self.bad_ihl_ppm,
            self.ttl_expire_ppm,
            self.truncate_ppm,
            self.payload_flip_ppm,
        ]
    }

    /// Validate the plan against a router configuration.
    pub fn validate(&self, cfg: &RouterConfig) -> Result<(), String> {
        for r in self.rates().iter().chain([&self.lookup_miss_ppm]) {
            if *r > 1_000_000 {
                return Err(format!("rate {r} ppm exceeds 1_000_000"));
            }
        }
        if self.truncate_ppm > 0 && cfg.queueing != IngressQueueing::Voq {
            return Err(
                "truncation faults need IngressQueueing::Voq: a cut-through FIFO ingress \
                 streams words into the fabric before the missing tail is observable"
                    .into(),
            );
        }
        for s in &self.tile_stalls {
            if s.port >= NPORTS || s.element > ELEM_EGRESS {
                return Err(format!(
                    "stall spec port {} element {} out of range",
                    s.port, s.element
                ));
            }
        }
        for w in self.input_pauses.iter().chain(&self.output_stalls) {
            if w.port >= NPORTS {
                return Err(format!("window spec port {} out of range", w.port));
            }
        }
        Ok(())
    }
}

/// Per-class counts of faults actually injected (as opposed to the
/// plan's *rates*), for cross-checking against the drop counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFaults {
    pub header_flips: u64,
    pub bad_checksums: u64,
    pub bad_versions: u64,
    pub bad_ihls: u64,
    pub ttl_expires: u64,
    pub truncations: u64,
    pub payload_flips: u64,
}

impl InjectedFaults {
    /// Faults that must each surface as exactly one classified drop
    /// (payload flips are delivered; the rest are rejected).
    pub fn expected_drops(&self) -> u64 {
        self.header_flips
            + self.bad_checksums
            + self.bad_versions
            + self.bad_ihls
            + self.ttl_expires
            + self.truncations
    }

    pub fn total(&self) -> u64 {
        self.expected_drops() + self.payload_flips
    }
}

/// A [`RawRouter`] with a [`FaultPlan`] threaded through every layer:
/// stall windows scheduled on the machine, lookup faults armed in the
/// Lookup Processors, line-card windows installed, and every offered
/// packet passed through the corruption gauntlet.
pub struct ChaosRouter {
    pub router: RawRouter,
    pub plan: FaultPlan,
    pub injected: InjectedFaults,
    rng: CorruptRng,
}

impl ChaosRouter {
    pub fn try_new(
        mut cfg: RouterConfig,
        table: Arc<ForwardingTable>,
        plan: FaultPlan,
        telemetry: Option<SharedSink>,
    ) -> Result<ChaosRouter, String> {
        plan.validate(&cfg)?;
        if plan.lookup_miss_ppm > 0 {
            cfg.lookup_fault = Some(LookupFault {
                // Distinct stream from the packet-corruption draws.
                seed: plan.seed ^ 0x6c6f_6f6b_7570_5f21,
                miss_ppm: plan.lookup_miss_ppm,
                penalty_cycles: plan.lookup_penalty_cycles,
            });
        }
        let mut router = RawRouter::try_new_with_telemetry(cfg, table, telemetry)?;
        for s in &plan.tile_stalls {
            let tiles = &router.layout.ports[s.port];
            let tile = match s.element {
                ELEM_INGRESS => tiles.ingress,
                ELEM_LOOKUP => tiles.lookup,
                ELEM_CROSSBAR => tiles.crossbar,
                _ => tiles.egress,
            };
            router.machine.schedule_stall(tile, s.start, s.len);
        }
        for w in &plan.input_pauses {
            router.pause_input(w.port, w.start, w.len);
        }
        for w in &plan.output_stalls {
            router.stall_output(w.port, w.start, w.len);
        }
        let rng = CorruptRng::new(plan.seed);
        Ok(ChaosRouter {
            router,
            plan,
            injected: InjectedFaults::default(),
            rng,
        })
    }

    /// Offer one packet through the corruption gauntlet
    /// ([`corrupt_offer`]).
    pub fn offer(&mut self, port: usize, release: u64, pkt: &Packet) {
        match corrupt_offer(&self.plan, &mut self.rng, &mut self.injected, pkt) {
            None => self.router.offer(port, release, pkt),
            Some((_, words)) => self.router.offer_raw(port, release, words),
        }
    }
}

/// The corruption class index of a payload bit flip — the only class
/// that leaves the packet's header valid, so it is the only one a
/// multi-hop fabric can still route end-to-end.
pub const CLASS_PAYLOAD_FLIP: usize = 6;

/// The corruption gauntlet for one offered packet. Every fault class
/// draws in a fixed order (zero-rate classes consume no randomness),
/// then the first hit — if any — is applied to a copy of the packet's
/// wire words, so a campaign is a pure function of
/// `(plan, offer sequence)`. Returns `None` for a clean pass, or the
/// hit class index and the corrupted words.
pub fn corrupt_offer(
    plan: &FaultPlan,
    rng: &mut CorruptRng,
    injected: &mut InjectedFaults,
    pkt: &Packet,
) -> Option<(usize, Vec<u32>)> {
    let hits: Vec<bool> = plan
        .rates()
        .iter()
        .map(|&ppm| rng.chance_ppm(ppm))
        .collect();
    let class = hits.iter().position(|&h| h)?;
    let mut words = pkt.to_words();
    match class {
        0 => {
            corrupt::flip_header_bit(&mut words, rng);
            injected.header_flips += 1;
        }
        1 => {
            corrupt::bad_checksum(&mut words, rng);
            injected.bad_checksums += 1;
        }
        2 => {
            corrupt::bad_version(&mut words, rng);
            injected.bad_versions += 1;
        }
        3 => {
            corrupt::bad_ihl(&mut words, rng);
            injected.bad_ihls += 1;
        }
        4 => {
            corrupt::expire_ttl(&mut words, rng);
            injected.ttl_expires += 1;
        }
        5 => {
            // A line that loses a tail goes quiet for the cut's
            // duration: pad with idle frames back to the claimed
            // length so the wire framing (and the ingress ingest
            // chunking) stays aligned with the next packet.
            let claimed = words.len();
            corrupt::truncate_tail(&mut words, rng);
            words.resize(claimed, WIRE_IDLE);
            injected.truncations += 1;
        }
        _ => {
            corrupt::flip_payload_bit(&mut words, rng);
            injected.payload_flips += 1;
        }
    }
    Some((class, words))
}

/// The standard 4-port experiment table *with a default route*, so
/// forced lookup misses have somewhere to fall back to (port 0).
pub fn chaos_table() -> Arc<ForwardingTable> {
    let mut routes: Vec<RouteEntry> = raw_workloads::port_table_routes()
        .iter()
        .map(|r| RouteEntry::new(r.prefix, r.len, r.next_hop))
        .collect();
    routes.push(RouteEntry::new(0, 0, 0));
    Arc::new(ForwardingTable::build(&routes))
}

/// Every conservation invariant the fault layer must preserve, as a
/// list of human-readable violations (empty == healthy):
///
/// 1. `offered == delivered + dropped` — no packet vanishes, none is
///    double-counted;
/// 2. per port, `packets_dropped` equals the sum over the classified
///    [`DropReason`] buckets — every drop has exactly one reason;
/// 3. the telemetry recorder's per-port drop counters mirror the
///    ingress statistics;
/// 4. zero output-side parse errors — corruption never leaks a
///    malformed packet *through* the fabric;
/// 5. the per-tile `busy + idle + stall` cycle accounting still closes
///    (delegated to [`Recorder::conservation_violations`]).
pub fn conservation_errors(r: &RawRouter, rec: Option<&Recorder>) -> Vec<String> {
    let mut errs = Vec::new();
    let (offered, delivered, dropped) = (r.offered(), r.delivered_count(), r.dropped_count());
    if delivered + dropped != offered {
        errs.push(format!(
            "offered {offered} != delivered {delivered} + dropped {dropped}"
        ));
    }
    if r.parse_errors() != 0 {
        errs.push(format!(
            "{} corrupt packets leaked through to the outputs",
            r.parse_errors()
        ));
    }
    for p in 0..NPORTS {
        let s = r.ig_stats[p].lock().unwrap();
        let classified: u64 = s.drops.iter().sum();
        if s.packets_dropped != classified {
            errs.push(format!(
                "port {p}: packets_dropped {} != classified drop sum {classified}",
                s.packets_dropped
            ));
        }
        if let Some(rec) = rec {
            let mirror = rec.drop_counts(p);
            if mirror != s.drops {
                errs.push(format!(
                    "port {p}: telemetry drop counters {mirror:?} != ingress {:?}",
                    s.drops
                ));
            }
        }
    }
    if let Some(rec) = rec {
        let v = rec.conservation_violations(r.machine.cycle());
        if !v.is_empty() {
            errs.push(format!("tile cycle-state conservation violated on {v:?}"));
        }
    }
    errs
}

/// Within-flow order violations summed over all outputs (see
/// [`raw_workloads::flow_order_violations`]). Faults may *drop* packets
/// from a flow but must never reorder the survivors.
pub fn total_flow_order_violations(r: &RawRouter) -> u64 {
    (0..NPORTS)
        .map(|p| {
            let pkts: Vec<Packet> = r.delivered(p).into_iter().map(|(_, pkt)| pkt).collect();
            raw_workloads::flow_order_violations(&pkts) as u64
        })
        .sum()
}

/// FNV-1a digest of everything observable about a finished run: per-port
/// delivered streams (arrival cycle and exact words), classified drop
/// counters, and the final machine cycle. Two runs of the same plan on
/// the same traffic — in either engine mode — must produce equal
/// fingerprints.
pub fn fingerprint(r: &RawRouter) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for p in 0..NPORTS {
        for (cycle, pkt) in r.delivered(p) {
            mix(cycle);
            for w in pkt.to_words() {
                mix(u64::from(w));
            }
        }
    }
    for d in r.drop_reasons() {
        mix(d);
    }
    mix(r.offered());
    mix(r.machine.cycle());
    h
}

/// The observable outcome of one chaos campaign.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosRunResult {
    pub offered: u64,
    pub delivered: u64,
    pub dropped: u64,
    /// Aggregated per-reason drops, indexed by [`DropReason::index`].
    pub drops: [u64; DropReason::COUNT],
    pub injected: InjectedFaults,
    /// Forced lookup misses that actually fired, summed over ports.
    pub lookup_misses: u64,
    pub cycles: u64,
    /// Whether accounting closed before the deadline (no deadlock/wedge).
    pub drained: bool,
    pub flow_order_violations: u64,
    pub fingerprint: u64,
    pub summary: TelemetrySummary,
    /// Conservation violations (empty == graceful degradation held).
    pub errors: Vec<String>,
}

/// Run one full campaign: build a [`ChaosRouter`] with a telemetry
/// recorder attached, offer the schedule through the corruption
/// gauntlet, run until every packet is delivered or dropped (or
/// `max_cycles` pass), and collect every invariant check.
pub fn run_chaos(
    cfg: RouterConfig,
    table: Arc<ForwardingTable>,
    plan: &FaultPlan,
    sched: &[ScheduledPacket],
    max_cycles: u64,
) -> Result<ChaosRunResult, String> {
    let sink: SharedSink = shared(Recorder::new(16, NUM_STATIC_NETS));
    let mut cr = ChaosRouter::try_new(cfg, table, plan.clone(), Some(sink.clone()))?;
    for sp in sched {
        cr.offer(sp.port, sp.release, &sp.packet);
    }
    let drained = cr.router.run_until_drained(max_cycles);
    let r = &cr.router;
    let (summary, mut errors) = with_sink::<Recorder, _>(&sink, |rec| {
        (rec.summary(NPORTS), conservation_errors(r, Some(rec)))
    });
    if !drained {
        errors.push(format!(
            "accounting did not close within {max_cycles} cycles \
             (offered {} delivered {} dropped {})",
            r.offered(),
            r.delivered_count(),
            r.dropped_count()
        ));
    }
    let drops = r.drop_reasons();
    if drops.iter().sum::<u64>() != cr.injected.expected_drops() {
        errors.push(format!(
            "classified drops {} != injected rejectable faults {}",
            drops.iter().sum::<u64>(),
            cr.injected.expected_drops()
        ));
    }
    Ok(ChaosRunResult {
        offered: r.offered(),
        delivered: r.delivered_count(),
        dropped: r.dropped_count(),
        drops,
        injected: cr.injected,
        lookup_misses: r
            .lk_stats
            .iter()
            .map(|s| s.lock().unwrap().injected_misses)
            .sum(),
        cycles: r.machine.cycle(),
        drained,
        flow_order_violations: total_flow_order_violations(r),
        fingerprint: fingerprint(r),
        summary,
        errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_workloads::{generate, Workload};

    fn voq_cfg() -> RouterConfig {
        RouterConfig {
            quantum_words: 16,
            cut_through: true,
            queueing: IngressQueueing::Voq,
            ..RouterConfig::default()
        }
    }

    #[test]
    fn truncation_without_voq_is_rejected() {
        let plan = FaultPlan {
            truncate_ppm: 1,
            ..FaultPlan::zero(1)
        };
        let err = plan.validate(&RouterConfig::default()).unwrap_err();
        assert!(err.contains("Voq"), "{err}");
        assert!(plan.validate(&voq_cfg()).is_ok());
    }

    #[test]
    fn out_of_range_specs_are_rejected() {
        let cfg = RouterConfig::default();
        let plan = FaultPlan {
            tile_stalls: vec![StallSpec {
                port: 4,
                element: 0,
                start: 0,
                len: 1,
            }],
            ..FaultPlan::zero(1)
        };
        assert!(plan.validate(&cfg).is_err());
        let plan = FaultPlan {
            header_flip_ppm: 1_000_001,
            ..FaultPlan::zero(1)
        };
        assert!(plan.validate(&cfg).is_err());
        let plan = FaultPlan {
            output_stalls: vec![WindowSpec {
                port: 9,
                start: 0,
                len: 1,
            }],
            ..FaultPlan::zero(1)
        };
        assert!(plan.validate(&cfg).is_err());
    }

    #[test]
    fn reference_plan_roundtrips_through_json() {
        let plan = FaultPlan::reference();
        assert_eq!(plan.seed, 0xC4A0);
        assert_eq!(plan.tile_stalls.len(), 16);
        assert!(plan.tile_stalls.iter().all(|s| s.len == 500));
        let s = serde_json::to_string_pretty(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn zero_rate_offers_consume_no_randomness_and_pass_through() {
        let sched = generate(&Workload::peak(64, 20));
        let mut cr =
            ChaosRouter::try_new(voq_cfg(), chaos_table(), FaultPlan::zero(0xBEEF), None).unwrap();
        let before = cr.rng.clone();
        for sp in &sched {
            cr.offer(sp.port, sp.release, &sp.packet);
        }
        // chance_ppm(0) short-circuits, so the RNG state is untouched.
        assert_eq!(cr.rng.next_u64(), before.clone().next_u64());
        assert_eq!(cr.injected, InjectedFaults::default());
        assert!(cr.router.run_until_drained(200_000));
        assert_eq!(cr.router.delivered_count(), sched.len() as u64);
    }

    #[test]
    fn every_fault_class_injects_and_is_accounted() {
        // Rates high enough that a 200-packet schedule hits every class.
        let plan = FaultPlan {
            header_flip_ppm: 120_000,
            payload_flip_ppm: 120_000,
            bad_checksum_ppm: 120_000,
            ttl_expire_ppm: 120_000,
            bad_version_ppm: 120_000,
            bad_ihl_ppm: 120_000,
            truncate_ppm: 120_000,
            lookup_miss_ppm: 50_000,
            lookup_penalty_cycles: 32,
            ..FaultPlan::zero(7)
        };
        let sched = generate(&Workload::peak(64, 50));
        let res = run_chaos(voq_cfg(), chaos_table(), &plan, &sched, 2_000_000).unwrap();
        assert!(res.errors.is_empty(), "{:?}", res.errors);
        assert!(res.drained);
        let i = res.injected;
        for (name, n) in [
            ("header_flips", i.header_flips),
            ("bad_checksums", i.bad_checksums),
            ("bad_versions", i.bad_versions),
            ("bad_ihls", i.bad_ihls),
            ("ttl_expires", i.ttl_expires),
            ("truncations", i.truncations),
            ("payload_flips", i.payload_flips),
        ] {
            assert!(n > 0, "fault class {name} never fired in 200 packets");
        }
        assert_eq!(res.dropped, i.expected_drops());
        assert_eq!(res.delivered, res.offered - res.dropped);
        assert_eq!(res.flow_order_violations, 0);
        assert!(res.lookup_misses > 0, "forced lookup misses never engaged");
    }
}
