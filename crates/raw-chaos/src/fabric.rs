//! Fault injection against a whole [`raw_fabric::RawFabric`]: the
//! packet-corruption gauntlet at every external input, plus
//! fabric-level faults — inter-router link stalls, external line-card
//! pauses, and external egress backpressure windows.
//!
//! The graceful-degradation contract scales up unchanged: whatever the
//! plan, fabric-wide `offered == delivered + dropped` must close, every
//! drop must land in a classified per-router bucket, links must never
//! lose a packet, and — when no lookup faults are armed — surviving
//! flows must stay in order. (Forced lookup misses legitimately break
//! flow pinning: the miss falls back to the default route, putting part
//! of a flow on a different middle stage than its pinned path.)

use raw_fabric::{FabricConfig, RawFabric};
use raw_net::{CorruptRng, Packet};
use raw_xbar::LookupFault;
use serde::{Deserialize, Serialize};

use crate::{corrupt_offer, FaultPlan, InjectedFaults, WindowSpec, CLASS_PAYLOAD_FLIP};

/// Freeze one inter-router link's drain for a window of epochs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStallSpec {
    pub link: usize,
    pub start_epoch: u64,
    pub epochs: u64,
}

/// A fault campaign against a fabric: per-packet corruption (reusing
/// the single-router [`FaultPlan`], applied at the external inputs)
/// plus fabric-topology faults. `WindowSpec::port` names an *external*
/// port here; windows are in cycles, link stalls in epochs.
#[derive(Clone, Debug)]
pub struct FabricFaultPlan {
    pub packet: FaultPlan,
    pub link_stalls: Vec<LinkStallSpec>,
    pub ext_input_pauses: Vec<WindowSpec>,
    pub ext_output_stalls: Vec<WindowSpec>,
}

impl FabricFaultPlan {
    /// All rates zero, no windows — the clean baseline.
    pub fn zero(seed: u64) -> FabricFaultPlan {
        FabricFaultPlan {
            packet: FaultPlan::zero(seed),
            link_stalls: Vec::new(),
            ext_input_pauses: Vec::new(),
            ext_output_stalls: Vec::new(),
        }
    }
}

/// A [`RawFabric`] with a [`FabricFaultPlan`] armed: lookup faults in
/// every member router, link/line-card windows installed, and every
/// external offer passed through the corruption gauntlet.
pub struct ChaosFabric {
    pub fabric: RawFabric,
    pub plan: FabricFaultPlan,
    pub injected: InjectedFaults,
    rng: CorruptRng,
}

impl ChaosFabric {
    pub fn try_new(mut cfg: FabricConfig, plan: FabricFaultPlan) -> Result<ChaosFabric, String> {
        plan.packet.validate(&cfg.router)?;
        if plan.packet.lookup_miss_ppm > 0 {
            // Same fault stream seed in every router: each router's
            // processors draw independently, so the campaign stays a
            // pure function of the plan.
            cfg.router.lookup_fault = Some(LookupFault {
                seed: plan.packet.seed ^ 0x6c6f_6f6b_7570_5f21,
                miss_ppm: plan.packet.lookup_miss_ppm,
                penalty_cycles: plan.packet.lookup_penalty_cycles,
            });
        }
        let mut fabric = RawFabric::try_new(cfg).map_err(|e| e.to_string())?;
        for s in &plan.link_stalls {
            fabric.stall_link(s.link, s.start_epoch, s.epochs);
        }
        for w in &plan.ext_input_pauses {
            fabric.pause_ext_input(w.port, w.start, w.len);
        }
        for w in &plan.ext_output_stalls {
            fabric.stall_ext_output(w.port, w.start, w.len);
        }
        let rng = CorruptRng::new(plan.packet.seed);
        Ok(ChaosFabric {
            fabric,
            plan,
            injected: InjectedFaults::default(),
            rng,
        })
    }

    /// Offer one packet at external port `ext` through the gauntlet.
    /// A payload flip leaves the header valid, so the packet is
    /// re-parsed and offered normally — it gets sprayed and stamped
    /// like its flow-mates and traverses the fabric end-to-end. Every
    /// header-damaging class goes in as raw words and dies, classified,
    /// at the ingress stage.
    pub fn offer(&mut self, ext: usize, release: u64, pkt: &Packet) {
        match corrupt_offer(&self.plan.packet, &mut self.rng, &mut self.injected, pkt) {
            None => self.fabric.offer(ext, release, pkt),
            Some((CLASS_PAYLOAD_FLIP, words)) => {
                let flipped = Packet::from_words(&words)
                    .expect("a payload flip cannot invalidate the header");
                self.fabric.offer(ext, release, &flipped);
            }
            Some((_, words)) => self.fabric.offer_raw(ext, release, words),
        }
    }
}
