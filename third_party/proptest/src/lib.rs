//! Offline shim for the `proptest` crate.
//!
//! Properties run as plain `#[test]` functions: each case draws its inputs
//! from a [`Strategy`] with a per-test deterministic RNG and executes the
//! body with `prop_assert!` mapped to `assert!`. There is no shrinking —
//! a failing case reports the drawn values via the assertion message, and
//! determinism makes every failure reproducible by rerunning the test.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator behind every strategy draw (xoshiro256++-style
/// mix; quality is ample for test-case generation).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Seed a test's RNG from its name, so each property gets an independent
/// but reproducible stream.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h)
}

/// A source of test values. Object-safe so heterogeneous `prop_oneof!`
/// branches can be boxed together.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range must be non-empty");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range must be non-empty");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `any::<T>()` — the full-range strategy for primitives.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice among boxed branches — built by `prop_oneof!`.
pub struct Union<V> {
    branches: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(branches: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].sample(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count specifications accepted by [`vec`].
    pub trait SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "vec size range must be non-empty");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "vec size range must be non-empty");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Failure type for property helpers that return early with `?`. The shim's
/// `prop_assert!` panics instead of constructing this, but helper functions
/// spell the upstream signature `Result<(), TestCaseError>`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

pub type TestCaseResult = std::result::Result<(), TestCaseError>;

/// Per-property configuration; only the case count is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Upstream rejects and redraws; this shim counts the case as passed, which
/// keeps the same property semantics at a slightly lower effective case
/// count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($branch)),+])
    };
}

/// The property-test entry macro. Each `fn name(bindings in strategies)`
/// becomes a `#[test]` that runs `cases` sampled executions of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    // The body runs in a closure returning TestCaseResult so
                    // `?` on helper functions works as it does upstream.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: $crate::TestCaseResult = (|| {
                        $crate::__proptest_case! { __rng, ($($args)*), $body }
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("property failed: {e}");
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, (), $body:block) => { $body };
    ($rng:ident, ($arg:pat in $strat:expr), $body:block) => {
        {
            let $arg = $crate::Strategy::sample(&($strat), &mut $rng);
            $body
        }
    };
    ($rng:ident, ($arg:pat in $strat:expr, $($rest:tt)*), $body:block) => {
        {
            let $arg = $crate::Strategy::sample(&($strat), &mut $rng);
            $crate::__proptest_case! { $rng, ($($rest)*), $body }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![(0u8..255).prop_map(Op::Push), Just(Op::Pop)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples(x in 3u32..17, (a, b) in (0u8..4, 10u64..=20)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((10..=20).contains(&b));
        }

        #[test]
        fn vec_and_oneof(ops in crate::collection::vec(arb_op(), 0..50), seed in any::<u32>()) {
            prop_assert!(ops.len() < 50);
            let _ = seed;
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_rng("foo");
        let mut b = crate::test_rng("foo");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
