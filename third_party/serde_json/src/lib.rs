//! Offline shim for `serde_json`: pretty printing and parsing via the
//! serde shim's [`serde::Value`] tree. Output format matches upstream
//! `to_string_pretty` (two-space indent, `": "` separators, floats always
//! carrying a decimal point or exponent).

use serde::Value;
use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: for<'de> serde::Deserialize<'de>>(s: &str) -> Result<T> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error(format!("trailing characters at byte {}", p.i)));
    }
    T::from_value(&v).map_err(Error)
}

fn render(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => render_float(*f, out),
        Value::Str(s) => render_str(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                render(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                push_indent(indent + 1, out);
                render_str(k, out);
                out.push_str(": ");
                render(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn render_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // Upstream serde_json errors on non-finite floats; results data is
        // always finite, so rendering null keeps the shim total.
        out.push_str("null");
        return;
    }
    // Rust's Display already prints the shortest round-trip decimal; JSON
    // floats additionally always carry a fractional part or exponent.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.i))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.i))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.i += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad float `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad int `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("bad int `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_matches_upstream_shape() {
        let v = vec![1i32, 2, 3];
        let s = super::to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2,\n  3\n]");
        let back: Vec<i32> = super::from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_decimal_point() {
        let s = super::to_string_pretty(&vec![26.0f64, 0.125]).unwrap();
        assert_eq!(s, "[\n  26.0,\n  0.125\n]");
    }

    #[test]
    fn strings_escape() {
        let s = super::to_string_pretty(&"a\"b\\c\n").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
        let back: String = super::from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\n");
    }
}
