//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! generator than rand 0.8's ChaCha12, so sequences differ from upstream,
//! but every use in this workspace only requires a deterministic,
//! statistically solid uniform generator behind `seed_from_u64`.

pub mod rngs;

/// Construction from a 64-bit seed (the only constructor this workspace
/// uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw word generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        // 53 uniform mantissa bits in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The distribution producing "a uniformly random value of T".
pub struct Standard;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`]. Blanket-implemented over
/// [`SampleUniform`] (as in upstream rand) so type inference unifies the
/// range's element type with the expected result type.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Uniform draw from `[0, span)` by widening multiply (Lemire); unbiased
/// enough for simulation workloads and much cheaper than rejection.
#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(sample_below(rng, span + 1) as $t)
                } else {
                    lo.wrapping_add(sample_below(rng, span) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + f * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(8usize..=15);
            assert!((8..=15).contains(&w));
            let s = rng.gen_range(-5i16..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 4];
        for _ in 0..1600 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((300..=500).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..=3300).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
