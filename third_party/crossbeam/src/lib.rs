//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::scope` on top of `std::thread::scope`. The spawned
//! closure receives a placeholder `()` argument instead of a nested scope
//! reference (every call site in this workspace ignores the argument).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::ScopedJoinHandle;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Run `f` with a scope handle; all threads spawned through the handle are
/// joined before this returns. A panic on any spawned thread surfaces as
/// `Err`, matching crossbeam's contract.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawns_and_joins() {
        let mut out = vec![0u32; 4];
        super::scope(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u32 + 1);
            }
        })
        .expect("threads");
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
