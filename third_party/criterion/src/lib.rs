//! Offline shim for the `criterion` crate.
//!
//! Benchmarks compile and run with the same source as upstream criterion;
//! measurement here is a plain wall-clock loop (one warmup iteration, then
//! `sample_size` timed iterations) printing mean and min per iteration.
//! No statistical analysis, plots, or baselines.

use std::time::{Duration, Instant};

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id, 20, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Upstream-compatible: declare the work performed per iteration so
    /// the report includes a rate (elements/s or bytes/s) next to the
    /// wall time. Applies to subsequent `bench_function` calls.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Per-iteration work, for rate reporting (upstream-compatible subset).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters: sample_size as u64,
    };
    f(&mut b);
    let n = b.samples.len().max(1) as u32;
    let total: Duration = b.samples.iter().sum();
    let mean = total / n;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let rate = throughput
        .map(|t| {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "Melem/s"),
                Throughput::Bytes(n) => (n, "MB/s"),
            };
            let per_sec = count as f64 / mean.as_secs_f64().max(1e-12) / 1e6;
            format!(", {per_sec:.2} {unit}")
        })
        .unwrap_or_default();
    println!(
        "bench {id}: mean {mean:?}, min {min:?} per iter ({} iters{rate})",
        b.samples.len()
    );
}

pub struct Bencher {
    samples: Vec<Duration>,
    iters: u64,
}

impl Bencher {
    /// Time `routine` once per sample after a single untimed warmup call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.iters {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Like `iter`, with a fresh untimed `setup` product per timed call.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| 2 + 2));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 8],
                |v| v.iter().sum::<u32>(),
                BatchSize::PerIteration,
            )
        });
        g.finish();
    }

    criterion_group!(benches, bench_trivial);

    #[test]
    fn group_runs() {
        benches();
    }
}
