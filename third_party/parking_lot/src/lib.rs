//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` so that `lock()` returns the guard directly
//! (parking_lot mutexes do not poison). Only the surface this workspace
//! uses is provided.

use std::sync::MutexGuard;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock. Unlike `std`, a panic in another thread while
    /// holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(3usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
    }
}
