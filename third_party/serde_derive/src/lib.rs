//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the one
//! shape this workspace uses: non-generic structs with named fields. The
//! input token stream is parsed structurally with the `proc_macro` API (no
//! syn/quote), tracking angle-bracket depth so generic types containing
//! commas split correctly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Struct {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream) -> Struct {
    let mut iter = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes (doc comments arrive as #[doc = ...]).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde shim derive: expected struct name, got {other:?}"),
                }
                break;
            }
            // `pub`, `pub(crate)`, etc. fall through.
            _ => {}
        }
    }
    let name = name.expect("serde shim derive: only structs are supported");

    // Find the brace-delimited field block (skipping any generics would go
    // here, but the workspace derives on non-generic structs only).
    let body = iter
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("serde shim derive: {name} must have named fields"));

    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match toks.next() {
                None => break None,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = toks.peek() {
                        toks.next(); // pub(crate) / pub(super)
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => {
                    panic!("serde shim derive: unexpected token {other} in {name}")
                }
            }
        };
        let Some(field) = field else { break };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected ':' after {name}.{field}, got {other:?}"),
        }
        fields.push(field);
        // Skip the type: consume until a comma at angle depth 0.
        let mut angle_depth = 0i32;
        for tt in toks.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    Struct { name, fields }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let pushes: String = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "__fields.push((\"{f}\".to_string(), \
                 ::serde::Serialize::to_value(&self.{f})));"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __fields = ::std::vec::Vec::new();\n\
                 {pushes}\n\
                 ::serde::Value::Object(__fields)\n\
             }}\n\
         }}",
        name = s.name
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let inits: String = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                     __v.get(\"{f}\")\
                        .ok_or_else(|| format!(\"missing field `{f}`\"))?,\
                 )?,"
            )
        })
        .collect();
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = s.name
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl must parse")
}
