//! Offline shim for the `serde` crate.
//!
//! Instead of serde's visitor-based data model, this shim serializes
//! through a small self-describing [`Value`] tree that `serde_json` (the
//! companion shim) renders and parses. The public names (`Serialize`,
//! `Deserialize`, derive macros of the same names) match upstream so the
//! workspace code is source-compatible with real serde.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, the intermediate form between typed values
/// and JSON text.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Field order is preserved, matching derive-order output of serde_json.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

#[allow(clippy::needless_lifetimes)]
pub trait Deserialize<'de>: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(format!("expected unsigned integer, got {other:?}")),
                };
                <$t>::try_from(n).map_err(|_| format!("{n} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| format!("{n} out of range for i64"))?,
                    other => return Err(format!("expected integer, got {other:?}")),
                };
                <$t>::try_from(n).map_err(|_| format!("{n} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

// Identity impls so callers can work with the self-describing tree
// directly (e.g. validating generated JSON documents).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                parsed
                    .try_into()
                    .map_err(|_| "array length mismatch".to_string())
            }
            Value::Array(items) => Err(format!("expected {N} elements, got {}", items.len())),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Array(items) => Ok(($(
                        $t::from_value(
                            items.get($n).ok_or_else(|| "tuple too short".to_string())?,
                        )?,
                    )+)),
                    other => Err(format!("expected array, got {other:?}")),
                }
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
